//! A hand-rolled Rust lexer, just enough for `tpa-lint`'s rules.
//!
//! The analyzer's whole credibility rests on the lexer getting the
//! awkward cases right: `"a string containing unwrap()"` must not trip
//! the panic-freedom rule, `'g>` is a lifetime and not an unterminated
//! char literal, `r#"raw "quoted" text"#` swallows its body, block
//! comments nest (`/* outer /* inner */ still comment */`), and
//! `#[cfg(test)] mod tests { … }` is invisible to every rule. No `syn`
//! here — the build environment is offline and the linter must stay
//! dependency-free — so this is a small, fully-tested state machine.
//!
//! Output: a token stream (identifiers, punctuation, literals) each
//! stamped with a 1-based line number, plus a per-line comment map the
//! rules use to find `// ord:` justifications and
//! `// lint:allow(rule, "reason")` escape hatches.

use std::collections::HashMap;

/// What a token is. Literal payloads are discarded — the rules only
/// ever match identifiers and punctuation — but the *kind* is kept so
/// fixture tests can assert strings and chars were skipped correctly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `Ordering`, …).
    Ident,
    /// Punctuation. Multi-char operators that the rules care about are
    /// fused into one token: `::`, `->`, `=>`, `+=`, `-=`, `*=`, `/=`,
    /// `..`, `..=`, `&&`, `||`, `==`, `!=`. (`>>`/`<<`/`>=`/`<=` are
    /// deliberately *not* fused: `Vec<Vec<f64>>` must close two
    /// generics.)
    Punct,
    /// String / raw string / byte-string literal (body discarded).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal (`42`, `1.5e-7`, `0xff`, `1_000u64`).
    Num,
    /// Lifetime (`'g`, `'static`).
    Lifetime,
}

/// One lexed token: kind, text (empty for literals), 1-based line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexer output: tokens plus the comment text attached to each line.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Concatenated comment text per 1-based line. A block comment
    /// spanning several lines contributes each line's slice to that
    /// line's entry, so `// ord:` lookups work line-by-line.
    pub comments: HashMap<usize, String>,
    /// Lines that hold at least one token (used to find comment-only
    /// lines when walking justification comments upward).
    pub token_lines: std::collections::HashSet<usize>,
}

impl Lexed {
    /// The comment text on `line`, if any.
    pub fn comment_on(&self, line: usize) -> Option<&str> {
        self.comments.get(&line).map(|s| s.as_str())
    }

    /// True when `line` has comment text but no tokens — a pure comment
    /// line, eligible to justify the code line(s) below it.
    pub fn is_comment_only_line(&self, line: usize) -> bool {
        self.comments.contains_key(&line) && !self.token_lines.contains(&line)
    }

    /// Searches the comment on `line` itself, then contiguous
    /// comment-only lines directly above, calling `pred` on each
    /// comment. Returns the first `Some`.
    pub fn find_justification<T>(
        &self,
        line: usize,
        mut pred: impl FnMut(&str) -> Option<T>,
    ) -> Option<T> {
        if let Some(c) = self.comment_on(line) {
            if let Some(v) = pred(c) {
                return Some(v);
            }
        }
        let mut l = line;
        while l > 1 && self.is_comment_only_line(l - 1) {
            l -= 1;
            if let Some(v) = self.comment_on(l).and_then(&mut pred) {
                return Some(v);
            }
        }
        None
    }
}

const FUSED: &[&str] =
    &["::", "->", "=>", "..=", "..", "+=", "-=", "*=", "/=", "&&", "||", "==", "!="];

/// Lexes `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behaviour a linter wants (the compiler is the
/// authority on well-formedness, not us).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;

    // Appends `text` to the comment map for `line`.
    fn push_comment(out: &mut Lexed, line: usize, text: &str) {
        let e = out.comments.entry(line).or_default();
        if !e.is_empty() {
            e.push(' ');
        }
        e.push_str(text);
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (incl. doc comments). Body recorded.
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push_comment(&mut out, line, src[start..i].trim_start_matches('/').trim());
            }
            // Block comment, nesting, body recorded per line.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                let mut seg_start = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        push_comment(&mut out, line, src[seg_start..i].trim_matches('*').trim());
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(seg_start);
                push_comment(&mut out, line, src[seg_start..end].trim_matches('*').trim());
            }
            // Raw / byte string prefixes: r", r#…", b", br", br#…".
            b'r' | b'b' if is_string_prefix(b, i) => {
                let (kind_len, hashes, raw) = string_prefix(b, i);
                i += kind_len + 1; // prefix + opening quote
                if raw {
                    // raw string: consume until `"` followed by `hashes` #s
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if b[i] == b'"' {
                            let mut h = 0;
                            while h < hashes && b.get(i + 1 + h) == Some(&b'#') {
                                h += 1;
                            }
                            if h == hashes {
                                i += 1 + hashes;
                                break;
                            }
                        }
                        i += 1;
                    }
                } else {
                    // b"…": escape-aware, like a plain string.
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
                out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line });
                out.token_lines.insert(line);
            }
            b'"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line });
                out.token_lines.insert(line);
            }
            // Lifetime or char literal.
            b'\'' => {
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    // lifetime: 'ident (not closed by a quote)
                    i += 1;
                    let start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                    out.token_lines.insert(line);
                } else {
                    // char literal, possibly escaped ('\'' '\\' '\u{..}')
                    i += 1;
                    if b.get(i) == Some(&b'\\') {
                        i += 2;
                        // \u{…}
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else if i < b.len() {
                        i += 1;
                    }
                    if b.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Char, text: String::new(), line });
                    out.token_lines.insert(line);
                }
            }
            c if c.is_ascii_digit() => {
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.'
                        && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(i.wrapping_sub(1)).is_some_and(|p| p.is_ascii_digit())
                    {
                        // 1.5 but not 0..n
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b.get(i.wrapping_sub(1)), Some(&b'e') | Some(&b'E'))
                    {
                        // 1e-7
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Num, text: String::new(), line });
                out.token_lines.insert(line);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                lex_ident(b, src, &mut i, line, &mut out);
            }
            _ => {
                // Punctuation; fuse the operators the rules match on.
                let rest = &src[i..];
                let fused = FUSED.iter().find(|op| rest.starts_with(**op));
                let text = match fused {
                    Some(op) => (*op).to_string(),
                    None => (c as char).to_string(),
                };
                i += text.len();
                out.tokens.push(Token { kind: TokKind::Punct, text, line });
                out.token_lines.insert(line);
            }
        }
    }
    out
}

fn lex_ident(b: &[u8], src: &str, i: &mut usize, line: usize, out: &mut Lexed) {
    let start = *i;
    while *i < b.len() && (b[*i].is_ascii_alphanumeric() || b[*i] == b'_') {
        *i += 1;
    }
    out.tokens.push(Token { kind: TokKind::Ident, text: src[start..*i].to_string(), line });
    out.token_lines.insert(line);
}

/// True when position `i` starts a raw/byte string prefix rather than a
/// plain identifier beginning with `r`/`b`.
fn is_string_prefix(b: &[u8], i: usize) -> bool {
    let (len, _, _) = string_prefix(b, i);
    // The prefix scanner already required the opening quote.
    len > 0 && b.get(i + len) == Some(&b'"')
}

/// `(prefix_len_before_quote, hash_count, is_raw)` for r"/r#"/b"/br"/
/// br#" prefixes, or `(0, 0, false)` when `i` does not start one.
fn string_prefix(b: &[u8], i: usize) -> (usize, usize, bool) {
    let raw_at = |j: usize| -> Option<usize> {
        // b[j] == 'r': count #s, require a quote after them.
        let mut h = 0;
        while b.get(j + 1 + h) == Some(&b'#') {
            h += 1;
        }
        (b.get(j + 1 + h) == Some(&b'"')).then_some(h)
    };
    match b[i] {
        b'r' => match raw_at(i) {
            Some(h) => (1 + h, h, true),
            None => (0, 0, false),
        },
        b'b' => match b.get(i + 1) {
            Some(&b'"') => (1, 0, false),
            Some(&b'r') => match raw_at(i + 1) {
                Some(h) => (2 + h, h, true),
                None => (0, 0, false),
            },
            _ => (0, 0, false),
        },
        _ => (0, 0, false),
    }
}

/// Strips items annotated `#[cfg(test)]` / `#[test]` (and any stack of
/// attributes around them) from a token stream, returning the tokens
/// every rule actually sees. Comment maps are left alone — an allow
/// inside test code simply never matches anything.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Parse the attribute's tokens to its closing bracket.
            let (end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                // Skip any further attributes, then the item itself.
                let mut j = end;
                while j < tokens.len()
                    && tokens[j].is_punct("#")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
                {
                    let (e, _) = scan_attribute(tokens, j + 1);
                    j = e;
                }
                i = skip_item(tokens, j);
                continue;
            }
            // Non-test attribute: keep its tokens (rules ignore them).
            out.extend_from_slice(&tokens[i..end]);
            i = end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// From the `[` at `open`, returns (index just past the matching `]`,
/// whether the attribute marks test-only code: `test`, `cfg(test)`, or
/// any `cfg(…)` whose argument list mentions `test`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = open;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Ident {
            idents.push(&t.text);
        }
        match t.text.as_str() {
            "[" | "(" if t.kind == TokKind::Punct => depth += 1,
            "]" | ")" if t.kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let is_test = idents.first() == Some(&"test")
        || (idents.contains(&"cfg") && idents.contains(&"test"))
        || idents.first() == Some(&"bench");
    (j, is_test)
}

/// From the first token of an item (post-attributes), returns the index
/// just past it: either past the `;` of a braceless item or past the
/// matching `}` of its body.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" if depth == 0 => return j + 1,
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}
