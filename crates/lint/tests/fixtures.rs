//! Fixture tests for every `tpa-lint` rule family, the lexer's edge
//! cases, and the self-check that the workspace matches the committed
//! baseline exactly.

use tpa_lint::baseline::{check, Baseline};
use tpa_lint::{analyze, analyze_workspace, Config, Finding, SourceFile};

/// A config scoping every rule family onto fixture paths under `fix/`.
fn fixture_config() -> Config {
    Config {
        panic_paths: vec!["fix/service.rs"],
        lock_paths: vec!["fix/locks.rs"],
        kernel_paths: vec!["fix/kernel.rs"],
        stringly_prefixes: vec!["fix/"],
        ordering_policy: vec![("fix/policy.rs", "Relaxed")],
    }
}

fn run_one(path: &str, src: &str) -> Vec<Finding> {
    analyze(&[SourceFile::parse(path, src)], &fixture_config())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ------------------------------------------------------------------
// Lexer edge cases: panic-looking text that must NOT be flagged.
// ------------------------------------------------------------------

#[test]
fn string_literal_containing_unwrap_is_not_a_finding() {
    let src = r#"
        fn f() -> String {
            let s = "please call x.unwrap() and panic!(now)";
            s.to_string()
        }
    "#;
    assert!(run_one("fix/service.rs", src).is_empty());
}

#[test]
fn raw_string_containing_panic_is_not_a_finding() {
    let src = r###"
        fn f() -> &'static str {
            r#"x.unwrap(); panic!("boom"); a[i]"#
        }
    "###;
    assert!(run_one("fix/service.rs", src).is_empty());
}

#[test]
fn nested_block_comment_is_skipped() {
    let src = "
        /* outer /* inner x.unwrap() */ still outer panic!(\"no\") */
        fn f() {}
    ";
    assert!(run_one("fix/service.rs", src).is_empty());
}

#[test]
fn lifetimes_are_not_char_literals() {
    // A naive lexer treats `'a` as an unterminated char and derails.
    let src = "
        fn f<'a>(x: &'a [u64]) -> &'a u64 { &x[0] }
    ";
    let f = run_one("fix/service.rs", src);
    // The unchecked index IS real and must survive the lifetimes.
    assert_eq!(rules_of(&f), vec!["unchecked-index"]);
}

#[test]
fn cfg_test_items_are_stripped() {
    let src = r#"
        fn live() -> u64 { 1 }

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let v: Vec<u64> = vec![1];
                assert_eq!(v.first().unwrap(), &v[0]);
                panic!("test-only");
            }
        }
    "#;
    assert!(run_one("fix/service.rs", src).is_empty());
}

#[test]
fn test_attr_fn_is_stripped_but_sibling_is_not() {
    let src = r#"
        #[test]
        fn t() { Some(1).unwrap(); }

        fn live(x: Option<u64>) -> u64 { x.unwrap() }
    "#;
    let f = run_one("fix/service.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "panic-freedom");
    assert_eq!(f[0].line, 5);
}

// ------------------------------------------------------------------
// Family 1: panic-freedom.
// ------------------------------------------------------------------

#[test]
fn panic_freedom_catches_every_macro_and_method() {
    let src = r#"
        fn f(x: Option<u64>, v: &[u64], i: usize) -> u64 {
            let a = x.unwrap();
            let b = x.expect("present");
            if a == 0 { panic!("zero"); }
            if b == 1 { unreachable!(); }
            if i == 2 { todo!(); }
            v[i] + a + b
        }
    "#;
    let f = run_one("fix/service.rs", src);
    let mut rules = rules_of(&f);
    rules.sort();
    assert_eq!(
        rules,
        vec![
            "panic-freedom",
            "panic-freedom",
            "panic-freedom",
            "panic-freedom",
            "panic-freedom",
            "unchecked-index"
        ]
    );
}

#[test]
fn out_of_scope_file_is_not_checked_for_panics() {
    let src = "fn f(x: Option<u64>) -> u64 { x.unwrap() }";
    assert!(run_one("fix/other.rs", src).is_empty());
}

#[test]
fn allow_with_reason_waives_and_without_reason_does_not() {
    let waived = r#"
        fn f(x: Option<u64>) -> u64 {
            // lint:allow(panic-freedom, "checked two lines up")
            x.unwrap()
        }
    "#;
    assert!(run_one("fix/service.rs", waived).is_empty());

    let empty_reason = r#"
        fn f(x: Option<u64>) -> u64 {
            // lint:allow(panic-freedom, "")
            x.unwrap()
        }
    "#;
    assert_eq!(run_one("fix/service.rs", empty_reason).len(), 1);

    let wrong_rule = r#"
        fn f(x: Option<u64>) -> u64 {
            // lint:allow(unchecked-index, "irrelevant")
            x.unwrap()
        }
    "#;
    assert_eq!(run_one("fix/service.rs", wrong_rule).len(), 1);
}

#[test]
fn same_line_allow_waives() {
    let src = r#"
        fn f(x: Option<u64>) -> u64 {
            x.unwrap() // lint:allow(panic-freedom, "proven Some by caller")
        }
    "#;
    assert!(run_one("fix/service.rs", src).is_empty());
}

// ------------------------------------------------------------------
// Family 2: atomic-ordering.
// ------------------------------------------------------------------

#[test]
fn ordering_without_justification_is_flagged() {
    let src = "
        fn f(c: &std::sync::atomic::AtomicU64) -> u64 {
            c.load(Ordering::Relaxed)
        }
    ";
    let f = run_one("fix/any.rs", src);
    assert_eq!(rules_of(&f), vec!["atomic-ordering"]);
}

#[test]
fn ord_comment_justifies_same_line_or_above() {
    let same_line = "
        fn f(c: &A) -> u64 { c.load(Ordering::Relaxed) } // ord: statistical counter
    ";
    assert!(run_one("fix/any.rs", same_line).is_empty());

    let above = "
        fn f(c: &A) -> u64 {
            // ord: pairs with the Release store in g()
            c.load(Ordering::Acquire)
        }
    ";
    assert!(run_one("fix/any.rs", above).is_empty());
}

#[test]
fn ordering_policy_table_pre_approves() {
    let src = "fn f(c: &A) -> u64 { c.load(Ordering::Relaxed) }";
    assert!(run_one("fix/policy.rs", src).is_empty());
    // The policy names Relaxed only — SeqCst still needs a comment.
    let seqcst = "fn f(c: &A) -> u64 { c.load(Ordering::SeqCst) }";
    assert_eq!(run_one("fix/policy.rs", seqcst).len(), 1);
}

// ------------------------------------------------------------------
// Family 3: lock-order.
// ------------------------------------------------------------------

const LOCK_DECLS: &str = "
    struct S {
        a: Mutex<u64>,
        b: Mutex<u64>,
        cv: Condvar,
    }
";

#[test]
fn opposite_acquisition_orders_are_a_cycle() {
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn ab(&self) {{
                let g = self.a.lock().unwrap();
                let h = self.b.lock().unwrap();
            }}
            fn ba(&self) {{
                let h = self.b.lock().unwrap();
                let g = self.a.lock().unwrap();
            }}
        }}"
    );
    let f = run_one("fix/locks.rs", &src);
    assert!(f.iter().any(|f| f.rule == "lock-order"), "{f:?}");
}

#[test]
fn consistent_order_and_transient_guards_are_clean() {
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn ab(&self) {{
                let g = self.a.lock().unwrap();
                let h = self.b.lock().unwrap();
            }}
            fn also_ab(&self) {{
                let g = self.a.lock().unwrap();
                *self.b.lock().unwrap() += 1;
            }}
        }}"
    );
    assert!(run_one("fix/locks.rs", &src).is_empty());
}

#[test]
fn explicit_drop_releases_the_guard() {
    // Without the drop() this is ab vs ba — a cycle. The drop ends a's
    // hold before b is taken, so no edge a→b survives.
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn ab(&self) {{
                let g = self.a.lock().unwrap();
                drop(g);
                let h = self.b.lock().unwrap();
            }}
            fn ba(&self) {{
                let h = self.b.lock().unwrap();
                let g = self.a.lock().unwrap();
            }}
        }}"
    );
    assert!(run_one("fix/locks.rs", &src).is_empty());
}

#[test]
fn transitive_call_effects_close_the_cycle() {
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn takes_b(&self) {{
                let h = self.b.lock().unwrap();
            }}
            fn ab(&self) {{
                let g = self.a.lock().unwrap();
                self.takes_b();
            }}
            fn ba(&self) {{
                let h = self.b.lock().unwrap();
                let g = self.a.lock().unwrap();
            }}
        }}"
    );
    let f = run_one("fix/locks.rs", &src);
    assert!(f.iter().any(|f| f.rule == "lock-order"), "{f:?}");
}

#[test]
fn method_on_a_local_variable_does_not_inherit_effects() {
    // `other.takes_b()` is a method on a local — not `self` — so it
    // must NOT resolve to S::takes_b and fabricate an a→b edge.
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn takes_b(&self) {{
                let h = self.b.lock().unwrap();
            }}
            fn ab(&self, other: &Unrelated) {{
                let g = self.a.lock().unwrap();
                other.takes_b();
            }}
            fn ba(&self) {{
                let h = self.b.lock().unwrap();
                let g = self.a.lock().unwrap();
            }}
        }}"
    );
    assert!(run_one("fix/locks.rs", &src).is_empty());
}

#[test]
fn condvar_wait_while_holding_another_lock_is_flagged() {
    let src = format!(
        "{LOCK_DECLS}
        impl S {{
            fn waits(&self) {{
                let g = self.a.lock().unwrap();
                let h = self.b.lock().unwrap();
                let h = self.cv.wait(h).unwrap();
            }}
        }}"
    );
    let f = run_one("fix/locks.rs", &src);
    assert!(f.iter().any(|f| f.rule == "condvar-hold"), "{f:?}");
}

// ------------------------------------------------------------------
// Family 4: FP-determinism.
// ------------------------------------------------------------------

#[test]
fn float_fold_over_hashmap_iteration_is_flagged() {
    let src = "
        fn f(m: &HashMap<u32, f64>) -> f64 {
            m.values().sum()
        }
    ";
    let f = run_one("fix/kernel.rs", src);
    assert_eq!(rules_of(&f), vec!["fp-hashmap-fold"]);
}

#[test]
fn vec_fold_is_fine() {
    let src = "
        fn f(v: &Vec<f64>) -> f64 {
            v.iter().sum()
        }
    ";
    assert!(run_one("fix/kernel.rs", src).is_empty());
}

#[test]
fn unordered_parallel_reduction_is_flagged() {
    let src = "
        fn f(v: &[f64]) -> f64 {
            v.par_iter().sum()
        }
    ";
    let f = run_one("fix/kernel.rs", src);
    assert!(f.iter().any(|f| f.rule == "unordered-reduction"), "{f:?}");
}

#[test]
fn stringly_error_signatures_are_flagged() {
    let src = "
        fn f() -> Result<u64, String> { Ok(1) }
    ";
    let f = run_one("fix/anything.rs", src);
    assert_eq!(rules_of(&f), vec!["stringly-error"]);

    let typed = "
        fn f() -> Result<u64, TpaError> { Ok(1) }
    ";
    assert!(run_one("fix/anything.rs", typed).is_empty());

    let boxed = "
        fn f() -> Result<u64, Box<dyn std::error::Error>> { Ok(1) }
    ";
    let f = run_one("fix/anything.rs", boxed);
    assert_eq!(rules_of(&f), vec!["stringly-error"]);
}

// ------------------------------------------------------------------
// Baseline ratchet.
// ------------------------------------------------------------------

fn finding(file: &str, rule: &'static str) -> Finding {
    Finding {
        file: file.into(),
        line: 1,
        rule,
        severity: tpa_lint::Severity::Error,
        message: "x".into(),
    }
}

#[test]
fn baseline_roundtrips_through_json() {
    let findings = vec![
        finding("a.rs", "panic-freedom"),
        finding("a.rs", "panic-freedom"),
        finding("b.rs", "lock-order"),
    ];
    let b = Baseline::from_findings(&findings);
    let parsed = Baseline::parse(&b.render()).unwrap();
    assert_eq!(b, parsed);
    assert_eq!(parsed.total(), 3);
}

#[test]
fn ratchet_fails_on_new_and_on_stale() {
    let baseline = Baseline::from_findings(&[finding("a.rs", "panic-freedom")]);

    // Same counts: pass.
    let now = vec![finding("a.rs", "panic-freedom")];
    assert!(check(&now, &baseline).passed());

    // One more in the same cell: new findings, fail.
    let more = vec![finding("a.rs", "panic-freedom"), finding("a.rs", "panic-freedom")];
    let r = check(&more, &baseline);
    assert!(!r.passed());
    assert_eq!(r.new_findings.len(), 2, "the whole over-budget cell is listed");

    // Burned down to zero: stale baseline, fail (ratchet me).
    let r = check(&[], &baseline);
    assert!(!r.passed());
    assert_eq!(r.stale.len(), 1);

    // A fresh cell with no baseline entry: fail.
    let fresh = vec![finding("a.rs", "panic-freedom"), finding("c.rs", "atomic-ordering")];
    assert!(!check(&fresh, &baseline).passed());
}

// ------------------------------------------------------------------
// Workspace self-check: the committed baseline is exact.
// ------------------------------------------------------------------

#[test]
fn workspace_matches_committed_baseline_exactly() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = analyze_workspace(&root, &Config::repo()).expect("workspace scan");
    let committed = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let baseline = Baseline::parse(&committed).expect("committed baseline parses");
    let report = check(&findings, &baseline);
    assert!(
        report.passed(),
        "workspace drifted from lint-baseline.json: {} new, {} stale — run \
         `cargo run -p tpa-lint -- check --baseline lint-baseline.json --write-baseline` \
         and review the diff\nnew: {:#?}\nstale: {:?}",
        report.new_findings.len(),
        report.stale.len(),
        report.new_findings,
        report.stale,
    );
    // The hard contract families hold at zero outside the ratchet.
    for f in &findings {
        assert!(
            f.rule == "unchecked-index",
            "only unchecked-index debt may remain baselined, found {f}"
        );
    }
}
