//! Property-based tests across the baseline methods.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use tpa_baselines::{
    forward_push, hub_spoke_order, Fora, ForaConfig, MemoryBudget, MonteCarlo, MonteCarloConfig,
    RwrMethod, SlashburnConfig, Tpa,
};
use tpa_core::{CpiConfig, TpaParams};
use tpa_graph::gen::erdos_renyi_gnm;
use tpa_graph::{CsrGraph, NodeId};

fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn random_graph(n: usize, seed: u64) -> Arc<CsrGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (4 * n).min(n * (n - 1) / 2);
    Arc::new(erdos_renyi_gnm(n, m, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward push: error is bounded by the residual mass, for any rmax.
    #[test]
    fn push_error_bounded_by_residual(
        n in 8usize..50,
        gseed in 0u64..300,
        rmax_exp in 2u32..6,
        seed_frac in 0.0f64..1.0,
    ) {
        let g = random_graph(n, gseed);
        let seed = ((n as f64 * seed_frac) as usize).min(n - 1) as NodeId;
        let rmax = 10f64.powi(-(rmax_exp as i32));
        let res = forward_push(&g, seed, 0.15, rmax);
        let exact = tpa_core::exact_rwr(&g, seed, &CpiConfig { eps: 1e-12, ..Default::default() });
        prop_assert!(l1_dist(&res.reserve, &exact) <= res.residual_sum + 1e-9);
        // Reserve never overestimates any entry.
        for (r, e) in res.reserve.iter().zip(&exact) {
            prop_assert!(*r <= e + 1e-9);
        }
    }

    /// Monte Carlo estimates are proper distributions and deterministic.
    #[test]
    fn monte_carlo_is_distribution(n in 5usize..40, gseed in 0u64..200) {
        let g = random_graph(n, gseed);
        let mc = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig { walks: 2000, ..Default::default() },
        );
        let est = mc.query(0);
        prop_assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(est.iter().all(|&v| v >= 0.0));
        prop_assert_eq!(mc.query(0), est);
    }

    /// SlashBurn: partition is complete, disjoint, and block-diagonal for
    /// arbitrary random graphs (not just power-law ones).
    #[test]
    fn slashburn_invariants(n in 10usize..60, gseed in 0u64..300, max_block in 4usize..32) {
        let g = random_graph(n, gseed);
        let ord = hub_spoke_order(
            &g,
            SlashburnConfig { max_block, ..Default::default() },
        );
        prop_assert_eq!(ord.n1() + ord.n2(), n);
        // Disjoint cover.
        let mut seen = vec![false; n];
        for &v in ord.permutation().iter() {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // Block size respected and no cross-block edges.
        let mut block_of = vec![usize::MAX; n];
        for (bi, b) in ord.blocks.iter().enumerate() {
            prop_assert!(b.len() <= max_block);
            for &v in b {
                block_of[v as usize] = bi;
            }
        }
        for (u, v) in g.edges() {
            let (bu, bv) = (block_of[u as usize], block_of[v as usize]);
            if bu != usize::MAX && bv != usize::MAX {
                prop_assert_eq!(bu, bv);
            }
        }
    }

    /// FORA's estimate sums to ≈1 and respects the relative-error contract
    /// on above-threshold entries in aggregate.
    #[test]
    fn fora_mass_and_determinism(n in 10usize..50, gseed in 0u64..200) {
        let g = random_graph(n, gseed);
        let fora = Fora::new(Arc::clone(&g), ForaConfig::default());
        let est = fora.query(1);
        prop_assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert_eq!(fora.query(1), est);
    }

    /// TPA through the RwrMethod interface keeps the Theorem-2 bound on
    /// arbitrary random graphs.
    #[test]
    fn tpa_method_bound(n in 10usize..50, gseed in 0u64..200, s in 1usize..5) {
        let g = random_graph(n, gseed);
        let params = TpaParams::new(s, s + 5);
        let tpa = Tpa::preprocess(Arc::clone(&g), params, MemoryBudget::unlimited()).unwrap();
        let exact = tpa_core::exact_rwr(&g, 2, &params.cpi_config());
        let err = l1_dist(&tpa.query(2), &exact);
        prop_assert!(err <= tpa_core::bounds::total_bound(params.c, s) + 1e-9);
    }
}
