//! TPA wrapped in the common [`RwrMethod`] interface so the experiment
//! harness can run it side by side with the competitors.

use crate::{MemoryBudget, PreprocessError, RwrMethod};
use std::sync::Arc;
use tpa_core::{TpaIndex, TpaParams, Transition};
use tpa_graph::{CsrGraph, NodeId};

/// The proposed method (paper Algorithms 2 & 3) as an [`RwrMethod`].
pub struct Tpa {
    graph: Arc<CsrGraph>,
    index: TpaIndex,
}

impl Tpa {
    /// Runs the preprocessing phase (stranger approximation).
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        params: TpaParams,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        // TPA's index is one f64 per node.
        budget.check("TPA", graph.n() * 8)?;
        let index = TpaIndex::preprocess(&graph, params);
        Ok(Self { graph, index })
    }

    /// Access to the inner index (for part-wise experiments).
    pub fn index(&self) -> &TpaIndex {
        &self.index
    }
}

impl RwrMethod for Tpa {
    fn name(&self) -> &'static str {
        "TPA"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let t = Transition::new(&self.graph);
        self.index.query(&t, seed)
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::bounds;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn wrapper_matches_direct_index() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(43);
        let g = Arc::new(
            lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph,
        );
        let params = TpaParams::new(5, 10);
        let tpa = Tpa::preprocess(Arc::clone(&g), params, MemoryBudget::unlimited()).unwrap();
        let direct = TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        assert_eq!(tpa.query(9), direct.query(&t, 9));
        assert_eq!(tpa.index_bytes(), g.n() * 8);
    }

    #[test]
    fn respects_error_bound_via_wrapper() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(44);
        let g = Arc::new(
            lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph,
        );
        let params = TpaParams::new(4, 9);
        let tpa = Tpa::preprocess(Arc::clone(&g), params, MemoryBudget::unlimited()).unwrap();
        let exact = tpa_core::exact_rwr(&g, 77, &params.cpi_config());
        let err = l1_dist(&tpa.query(77), &exact);
        assert!(err <= bounds::total_bound(params.c, params.s) + 1e-9);
    }
}
