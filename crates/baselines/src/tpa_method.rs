//! TPA wrapped in the common [`RwrMethod`] interface so the experiment
//! harness can run it side by side with the competitors. Queries route
//! through the [`QueryEngine`] serving layer, so this wrapper serves the
//! same plans (single, batched, top-k) as the production path.

use crate::{MemoryBudget, PreprocessError, RwrMethod};
use std::sync::Arc;
use tpa_core::{QueryEngine, TpaIndex, TpaParams};
use tpa_graph::{CsrGraph, NodeId};

/// The proposed method (paper Algorithms 2 & 3) as an [`RwrMethod`].
pub struct Tpa {
    graph: Arc<CsrGraph>,
    index: Arc<TpaIndex>,
}

impl Tpa {
    /// Runs the preprocessing phase (stranger approximation).
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        params: TpaParams,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        // TPA's index is one f64 per node.
        budget.check("TPA", graph.n() * 8)?;
        let index = Arc::new(TpaIndex::preprocess(&graph, params));
        Ok(Self { graph, index })
    }

    /// Access to the inner index (for part-wise experiments).
    pub fn index(&self) -> &TpaIndex {
        &self.index
    }

    /// A [`QueryEngine`] serving this method's graph and index (the
    /// engine borrows the graph; the index is shared).
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::sequential(&self.graph).with_index(Arc::clone(&self.index))
    }
}

impl RwrMethod for Tpa {
    fn name(&self) -> &'static str {
        "TPA"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        self.engine().query(seed)
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    /// Batched override: lane tiles of seeds share edge passes through
    /// the engine's fused block kernel (bit-identical to per-seed
    /// queries).
    fn query_batch(&self, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        self.engine().query_batch(seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::{bounds, Transition};
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn wrapper_matches_direct_index() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(43);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph);
        let params = TpaParams::new(5, 10);
        let tpa = Tpa::preprocess(Arc::clone(&g), params, MemoryBudget::unlimited()).unwrap();
        let direct = TpaIndex::preprocess(&g, params);
        let t = Transition::new(&g);
        assert_eq!(tpa.query(9), direct.query(&t, 9));
        assert_eq!(tpa.index_bytes(), g.n() * 8);
    }

    #[test]
    fn respects_error_bound_via_wrapper() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(44);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph);
        let params = TpaParams::new(4, 9);
        let tpa = Tpa::preprocess(Arc::clone(&g), params, MemoryBudget::unlimited()).unwrap();
        let exact = tpa_core::exact_rwr(&g, 77, &params.cpi_config());
        let err = l1_dist(&tpa.query(77), &exact);
        assert!(err <= bounds::total_bound(params.c, params.s) + 1e-9);
    }

    #[test]
    fn batched_entry_point_is_bitwise_identical() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(45);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph);
        let tpa = Tpa::preprocess(Arc::clone(&g), TpaParams::new(5, 10), MemoryBudget::unlimited())
            .unwrap();
        let seeds = [0u32, 17, 99, 200];
        let batch = tpa.query_batch(&seeds);
        for (j, &s) in seeds.iter().enumerate() {
            assert_eq!(batch[j], tpa.query(s), "seed {s}");
        }
    }

    #[test]
    fn empty_batch_matches_trait_contract() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 100, m: 800, ..Default::default() }, &mut rng).graph);
        let tpa = Tpa::preprocess(Arc::clone(&g), TpaParams::new(4, 9), MemoryBudget::unlimited())
            .unwrap();
        // Same behavior as the blanket default: empty in, empty out.
        assert!(tpa.query_batch(&[]).is_empty());
        assert!(tpa.query_batch_top_k(&[], 3).is_empty());
    }

    #[test]
    fn top_k_entry_points_agree_with_scores() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(46);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 200, m: 1600, ..Default::default() }, &mut rng).graph);
        let tpa = Tpa::preprocess(Arc::clone(&g), TpaParams::new(5, 10), MemoryBudget::unlimited())
            .unwrap();
        let scores = tpa.query(11);
        let ranked = tpa.query_top_k(11, 5);
        assert_eq!(ranked.len(), 5);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "ranking not descending");
        }
        assert_eq!(ranked[0].1, scores.iter().cloned().fold(f64::MIN, f64::max));
        let batch_ranked = tpa.query_batch_top_k(&[11, 42], 5);
        assert_eq!(batch_ranked[0], ranked);
    }
}
