//! Shared block-elimination plumbing for BEAR-APPROX and BePI: building the
//! permuted RWR system matrix `H = I − (1−c)·Ãᵀ` and inverting its
//! block-diagonal leading block.

use crate::slashburn::HubSpokeOrdering;
use crate::PreprocessError;
use tpa_graph::{CsrGraph, NodeId};
use tpa_linalg::{DenseMatrix, Lu, SparseMatrix};

/// The four partitions of the permuted system matrix.
pub(crate) struct PartitionedH {
    /// `n1 × n1`, block diagonal by construction.
    pub h11: SparseMatrix,
    /// `n1 × n2`.
    pub h12: SparseMatrix,
    /// `n2 × n1`.
    pub h21: SparseMatrix,
    /// `n2 × n2`.
    pub h22: SparseMatrix,
}

/// Builds `H = I − (1−c)·Ãᵀ` in the permuted order and splits it at `n1`.
pub(crate) fn build_partitions(
    graph: &CsrGraph,
    ordering: &HubSpokeOrdering,
    c: f64,
) -> PartitionedH {
    let n = graph.n();
    let n1 = ordering.n1();
    let inv_perm = ordering.inverse_permutation();
    let inv_out = graph.inv_out_degrees();

    // Triplets of H in permuted coordinates. H[pv][pu] -= (1−c)/outdeg(u)
    // for every edge u→v, H[p][p] += 1.
    let mut t11 = Vec::new();
    let mut t12 = Vec::new();
    let mut t21 = Vec::new();
    let mut t22 = Vec::new();
    for u in 0..n as NodeId {
        let w = (1.0 - c) * inv_out[u as usize];
        let pu = inv_perm[u as usize] as usize;
        for &v in graph.out_neighbors(u) {
            let pv = inv_perm[v as usize] as usize;
            let entry = -w;
            match (pv < n1, pu < n1) {
                (true, true) => t11.push((pv as u32, pu as u32, entry)),
                (true, false) => t12.push((pv as u32, (pu - n1) as u32, entry)),
                (false, true) => t21.push(((pv - n1) as u32, pu as u32, entry)),
                (false, false) => t22.push(((pv - n1) as u32, (pu - n1) as u32, entry)),
            }
        }
    }
    for p in 0..n {
        if p < n1 {
            t11.push((p as u32, p as u32, 1.0));
        } else {
            t22.push(((p - n1) as u32, (p - n1) as u32, 1.0));
        }
    }
    let n2 = n - n1;
    PartitionedH {
        h11: SparseMatrix::from_triplets(n1, n1, t11),
        h12: SparseMatrix::from_triplets(n1, n2, t12),
        h21: SparseMatrix::from_triplets(n2, n1, t21),
        h22: SparseMatrix::from_triplets(n2, n2, t22),
    }
}

/// Inverts the block-diagonal `H11` exactly, block by block, returning the
/// inverse as a sparse matrix with entries below `drop_tol` removed.
pub(crate) fn invert_h11(
    h11: &SparseMatrix,
    ordering: &HubSpokeOrdering,
    drop_tol: f64,
    method: &'static str,
) -> Result<SparseMatrix, PreprocessError> {
    let n1 = ordering.n1();
    let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
    for (start, len) in ordering.block_ranges() {
        // Extract the dense block, invert, re-emit.
        let mut block = DenseMatrix::zeros(len, len);
        for r in 0..len {
            let (cols, vals) = h11.row(start + r);
            for (col, v) in cols.iter().zip(vals) {
                let c_local = *col as usize;
                debug_assert!(
                    c_local >= start && c_local < start + len,
                    "H11 is not block diagonal"
                );
                block.set(r, c_local - start, *v);
            }
        }
        let inv = Lu::factor(&block)
            .map_err(|e| PreprocessError::Numerical(method, format!("block at {start}: {e}")))?
            .inverse();
        for r in 0..len {
            for c2 in 0..len {
                let v = inv.get(r, c2);
                if v.abs() >= drop_tol {
                    triplets.push(((start + r) as u32, (start + c2) as u32, v));
                }
            }
        }
    }
    Ok(SparseMatrix::from_triplets(n1, n1, triplets))
}

/// Permutes a seed vector entry into `(q1, q2)` block coordinates: the seed
/// is a unit vector so only one side is nonzero.
pub(crate) fn split_seed(inv_perm: &[u32], n1: usize, seed: NodeId) -> (Vec<f64>, Vec<f64>, usize) {
    let p = inv_perm[seed as usize] as usize;
    let n2 = inv_perm.len() - n1;
    let mut q1 = vec![0.0; n1];
    let mut q2 = vec![0.0; n2];
    if p < n1 {
        q1[p] = 1.0;
    } else {
        q2[p - n1] = 1.0;
    }
    (q1, q2, p)
}

/// Scatters the permuted solution `[x1; x2]` (scaled by `c`) back to
/// original node order.
pub(crate) fn unpermute(perm: &[NodeId], c: f64, x1: &[f64], x2: &[f64]) -> Vec<f64> {
    let mut r = vec![0.0; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        let v = if new < x1.len() { x1[new] } else { x2[new - x1.len()] };
        r[old as usize] = c * v;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slashburn::{hub_spoke_order, SlashburnConfig};
    use std::sync::Arc;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn setup() -> (Arc<CsrGraph>, HubSpokeOrdering) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let g =
            Arc::new(lfr_lite(LfrConfig { n: 200, m: 1500, ..Default::default() }, &mut rng).graph);
        let ord = hub_spoke_order(&g, SlashburnConfig { max_block: 32, ..Default::default() });
        (g, ord)
    }

    #[test]
    fn partitions_cover_h_exactly() {
        let (g, ord) = setup();
        let c = 0.15;
        let parts = build_partitions(&g, &ord, c);
        let n1 = ord.n1();
        // Reassemble H and compare against the direct construction.
        let inv_perm = ord.inverse_permutation();
        let inv_out = g.inv_out_degrees();
        let mut expect = vec![std::collections::HashMap::new(); g.n()];
        for u in 0..g.n() as NodeId {
            for &v in g.out_neighbors(u) {
                let (pv, pu) = (inv_perm[v as usize] as usize, inv_perm[u as usize] as usize);
                *expect[pv].entry(pu).or_insert(0.0) += -(1.0 - c) * inv_out[u as usize];
            }
        }
        for (p, row) in expect.iter_mut().enumerate() {
            *row.entry(p).or_insert(0.0) += 1.0;
        }
        for (pv, row) in expect.iter().enumerate() {
            for (&pu, &want) in row {
                let got = match (pv < n1, pu < n1) {
                    (true, true) => parts.h11.get(pv, pu),
                    (true, false) => parts.h12.get(pv, pu - n1),
                    (false, true) => parts.h21.get(pv - n1, pu),
                    (false, false) => parts.h22.get(pv - n1, pu - n1),
                };
                assert!((got - want).abs() < 1e-12, "H[{pv}][{pu}]");
            }
        }
    }

    #[test]
    fn h11_inverse_is_correct_per_block() {
        let (g, ord) = setup();
        let parts = build_partitions(&g, &ord, 0.15);
        let inv = invert_h11(&parts.h11, &ord, 0.0, "test").unwrap();
        // H11 · H11⁻¹ = I on a few probe vectors.
        let n1 = ord.n1();
        for probe in [0usize, n1 / 3, n1 - 1] {
            let mut e = vec![0.0; n1];
            e[probe] = 1.0;
            let y = inv.matvec(&e);
            let z = parts.h11.matvec(&y);
            for (i, &zi) in z.iter().enumerate() {
                let want = if i == probe { 1.0 } else { 0.0 };
                assert!((zi - want).abs() < 1e-8, "probe {probe} row {i}: {zi}");
            }
        }
    }

    #[test]
    fn split_seed_places_unit_mass() {
        let (g, ord) = setup();
        let inv_perm = ord.inverse_permutation();
        let n1 = ord.n1();
        for seed in [0u32, 5, 100] {
            let (q1, q2, _) = split_seed(&inv_perm, n1, seed);
            let total: f64 = q1.iter().sum::<f64>() + q2.iter().sum::<f64>();
            assert_eq!(total, 1.0);
            let _ = g.n();
        }
    }

    #[test]
    fn unpermute_restores_node_order() {
        let (_, ord) = setup();
        let perm = ord.permutation();
        let n1 = ord.n1();
        let x1: Vec<f64> = (0..n1).map(|i| i as f64).collect();
        let x2: Vec<f64> = (0..ord.n2()).map(|i| (n1 + i) as f64).collect();
        let r = unpermute(&perm, 1.0, &x1, &x2);
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(r[old as usize], new as f64);
        }
    }
}
