//! BRPPR — Boundary-Restricted Personalized PageRank (Gleich & Polito,
//! Internet Mathematics 2006).
//!
//! Improves speed by limiting the amount of graph data accessed: an active
//! vertex set grows outward from the seed; RWR is computed on the induced
//! subgraph with walk mass that crosses the boundary treated as lost. The
//! active set is expanded with every boundary vertex whose accumulated rank
//! exceeds a threshold, until the total rank on the frontier drops below κ.

use crate::RwrMethod;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// BRPPR parameters. The paper's evaluation sets the expansion threshold to
/// `1e-4`.
#[derive(Clone, Copy, Debug)]
pub struct BrpprConfig {
    /// Restart probability.
    pub c: f64,
    /// Boundary vertices with rank above this are activated each round
    /// (paper setting: 1e-4).
    pub expand_threshold: f64,
    /// Stop expanding once total boundary rank < κ.
    pub kappa: f64,
    /// Inner power-iteration tolerance per round.
    pub inner_eps: f64,
    /// Cap on expansion rounds.
    pub max_rounds: usize,
}

impl Default for BrpprConfig {
    fn default() -> Self {
        Self { c: 0.15, expand_threshold: 1e-4, kappa: 1e-3, inner_eps: 1e-7, max_rounds: 50 }
    }
}

/// BRPPR method (online-only).
pub struct Brppr {
    graph: Arc<CsrGraph>,
    cfg: BrpprConfig,
}

impl Brppr {
    /// Creates the method.
    pub fn new(graph: Arc<CsrGraph>, cfg: BrpprConfig) -> Self {
        Self { graph, cfg }
    }

    /// Restricted CPI: propagate only out of *active* nodes; rank reaching
    /// inactive nodes accumulates there but is not propagated further
    /// (those nodes form the boundary).
    fn restricted_rwr(&self, seed: NodeId, active: &[bool]) -> Vec<f64> {
        let n = self.graph.n();
        let c = self.cfg.c;
        let mut x = vec![0.0f64; n];
        let mut next = vec![0.0f64; n];
        let mut scores = vec![0.0f64; n];
        x[seed as usize] = c;
        scores[seed as usize] = c;
        for _ in 0..1000 {
            next.iter_mut().for_each(|v| *v = 0.0);
            let mut moved = 0.0f64;
            for u in 0..n as NodeId {
                let xu = x[u as usize];
                if xu == 0.0 || !active[u as usize] {
                    continue;
                }
                let neigh = self.graph.out_neighbors(u);
                if neigh.is_empty() {
                    continue;
                }
                let share = (1.0 - c) * xu / neigh.len() as f64;
                for &w in neigh {
                    next[w as usize] += share;
                }
                moved += (1.0 - c) * xu;
            }
            std::mem::swap(&mut x, &mut next);
            for (s, v) in scores.iter_mut().zip(&x) {
                *s += v;
            }
            if moved < self.cfg.inner_eps {
                break;
            }
            // Mass sitting on inactive nodes stops moving: zero it out of
            // the working vector (it stays in `scores` as boundary rank).
            for v in 0..n {
                if !active[v] {
                    x[v] = 0.0;
                }
            }
        }
        scores
    }
}

impl RwrMethod for Brppr {
    fn name(&self) -> &'static str {
        "BRPPR"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let n = self.graph.n();
        let mut active = vec![false; n];
        active[seed as usize] = true;
        let mut scores = self.restricted_rwr(seed, &active);

        for _round in 0..self.cfg.max_rounds {
            // Boundary rank: scores on inactive nodes.
            let mut boundary_rank = 0.0;
            let mut expanded = false;
            for v in 0..n {
                if !active[v] && scores[v] > 0.0 {
                    boundary_rank += scores[v];
                }
            }
            if boundary_rank < self.cfg.kappa {
                break;
            }
            for v in 0..n {
                if !active[v] && scores[v] > self.cfg.expand_threshold {
                    active[v] = true;
                    expanded = true;
                }
            }
            if !expanded {
                break;
            }
            scores = self.restricted_rwr(seed, &active);
        }
        scores
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        Arc::new(
            lfr_lite(LfrConfig { n: 300, m: 2400, mu: 0.15, ..Default::default() }, &mut rng).graph,
        )
    }

    #[test]
    fn close_to_exact_on_community_graph() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 4, &CpiConfig::default());
        let brppr = Brppr::new(Arc::clone(&g), BrpprConfig::default());
        let est = brppr.query(4);
        let err = l1_dist(&est, &exact);
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn tighter_kappa_is_more_accurate() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 9, &CpiConfig::default());
        let loose = Brppr::new(
            Arc::clone(&g),
            BrpprConfig { kappa: 0.3, expand_threshold: 1e-2, ..Default::default() },
        )
        .query(9);
        let tight = Brppr::new(
            Arc::clone(&g),
            BrpprConfig { kappa: 1e-4, expand_threshold: 1e-5, ..Default::default() },
        )
        .query(9);
        assert!(l1_dist(&tight, &exact) <= l1_dist(&loose, &exact));
    }

    #[test]
    fn seed_keeps_highest_or_near_highest_rank() {
        let g = test_graph();
        let brppr = Brppr::new(g, BrpprConfig::default());
        let est = brppr.query(12);
        let max = est.iter().cloned().fold(0.0f64, f64::max);
        assert!(est[12] >= 0.3 * max);
    }

    #[test]
    fn never_exceeds_unit_mass() {
        let g = test_graph();
        let brppr = Brppr::new(g, BrpprConfig::default());
        let est = brppr.query(0);
        let total: f64 = est.iter().sum();
        assert!(total <= 1.0 + 1e-9, "total {total}");
        assert!(total > 0.5, "total {total}");
    }
}
