//! SlashBurn-style hub/spoke reordering (Kang & Faloutsos, ICDM'11) — the
//! node permutation underlying BEAR's and BePI's block elimination.
//!
//! Repeatedly removing the highest-degree *hub* nodes shatters a power-law
//! graph into many small connected *spoke* components. Ordering spokes
//! first and hubs last makes the leading `n1 × n1` block of the RWR system
//! matrix block-diagonal with small blocks — cheap to invert exactly.

use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// Reordering parameters.
#[derive(Clone, Copy, Debug)]
pub struct SlashburnConfig {
    /// Fraction of currently-alive nodes promoted to hubs each round.
    pub hub_fraction: f64,
    /// Components at most this large become spoke blocks; larger ones stay
    /// alive for further hub removal.
    pub max_block: usize,
    /// Safety cap on rounds; after it, every remaining node becomes a hub.
    pub max_rounds: usize,
}

impl Default for SlashburnConfig {
    fn default() -> Self {
        Self { hub_fraction: 0.02, max_block: 256, max_rounds: 60 }
    }
}

/// Result of the reordering: spoke blocks (disjoint, no edges between
/// different blocks) and the hub set.
#[derive(Clone, Debug)]
pub struct HubSpokeOrdering {
    /// Spoke blocks in removal order; every inter-block path passes
    /// through a hub.
    pub blocks: Vec<Vec<NodeId>>,
    /// Hub nodes (ordered by removal round, then degree).
    pub hubs: Vec<NodeId>,
}

impl HubSpokeOrdering {
    /// Number of spoke (non-hub) nodes, `n1`.
    pub fn n1(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Number of hub nodes, `n2`.
    pub fn n2(&self) -> usize {
        self.hubs.len()
    }

    /// Permutation `new index → old node id`: spoke blocks first (in block
    /// order), hubs last.
    pub fn permutation(&self) -> Vec<NodeId> {
        let mut p = Vec::with_capacity(self.n1() + self.n2());
        for b in &self.blocks {
            p.extend_from_slice(b);
        }
        p.extend_from_slice(&self.hubs);
        p
    }

    /// Inverse permutation `old node id → new index`.
    pub fn inverse_permutation(&self) -> Vec<u32> {
        let p = self.permutation();
        let mut inv = vec![0u32; p.len()];
        for (new, &old) in p.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        inv
    }

    /// `(start, len)` ranges of each block within the permuted order.
    pub fn block_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.blocks.len());
        let mut start = 0usize;
        for b in &self.blocks {
            out.push((start, b.len()));
            start += b.len();
        }
        out
    }
}

/// Computes the hub/spoke ordering. Treats the graph as undirected for both
/// the degree ranking and the connectivity (as SlashBurn does).
pub fn hub_spoke_order(graph: &Arc<CsrGraph>, cfg: SlashburnConfig) -> HubSpokeOrdering {
    let n = graph.n();
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut blocks: Vec<Vec<NodeId>> = Vec::new();
    let mut hubs: Vec<NodeId> = Vec::new();

    let degree = |v: NodeId| -> usize { graph.out_degree(v) + graph.in_degree(v) };

    for _round in 0..cfg.max_rounds {
        if alive_count == 0 {
            break;
        }
        // 1. Promote the k highest-degree alive nodes to hubs.
        let k = ((alive_count as f64 * cfg.hub_fraction).ceil() as usize).max(1);
        let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| alive[v as usize]).collect();
        candidates.sort_by_key(|&v| std::cmp::Reverse(degree(v)));
        for &h in candidates.iter().take(k) {
            alive[h as usize] = false;
            hubs.push(h);
        }
        alive_count -= k.min(alive_count);

        // 2. Connected components of the remaining graph; small ones become
        //    spoke blocks.
        let mut giant_exists = false;
        let mut visited = vec![false; n];
        for start in 0..n as NodeId {
            if !alive[start as usize] || visited[start as usize] {
                continue;
            }
            let comp = bfs_component(graph, start, &alive, &mut visited);
            if comp.len() <= cfg.max_block {
                for &v in &comp {
                    alive[v as usize] = false;
                }
                alive_count -= comp.len();
                blocks.push(comp);
            } else {
                giant_exists = true;
            }
        }
        if !giant_exists {
            break;
        }
    }

    // Whatever survives the round cap becomes hubs (keeps the block-diagonal
    // guarantee unconditionally).
    for v in 0..n as NodeId {
        if alive[v as usize] {
            hubs.push(v);
        }
    }

    HubSpokeOrdering { blocks, hubs }
}

/// Undirected BFS over alive nodes.
fn bfs_component(
    graph: &CsrGraph,
    start: NodeId,
    alive: &[bool],
    visited: &mut [bool],
) -> Vec<NodeId> {
    let mut comp = vec![start];
    let mut queue = std::collections::VecDeque::from([start]);
    visited[start as usize] = true;
    while let Some(v) = queue.pop_front() {
        for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            if alive[w as usize] && !visited[w as usize] {
                visited[w as usize] = true;
                comp.push(w);
                queue.push_back(w);
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::gen::{lfr_lite, star_graph, LfrConfig};

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        Arc::new(lfr_lite(LfrConfig { n: 500, m: 4000, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let g = test_graph();
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        assert_eq!(ord.n1() + ord.n2(), g.n());
        let mut seen = vec![false; g.n()];
        for &v in ord.permutation().iter() {
            assert!(!seen[v as usize], "node {v} appears twice");
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn no_edges_between_distinct_blocks() {
        let g = test_graph();
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        let mut block_of = vec![usize::MAX; g.n()];
        for (bi, b) in ord.blocks.iter().enumerate() {
            for &v in b {
                block_of[v as usize] = bi;
            }
        }
        for (u, v) in g.edges() {
            let (bu, bv) = (block_of[u as usize], block_of[v as usize]);
            if bu != usize::MAX && bv != usize::MAX {
                assert_eq!(bu, bv, "edge ({u},{v}) crosses blocks {bu}/{bv}");
            }
        }
    }

    #[test]
    fn blocks_respect_max_size() {
        let g = test_graph();
        let cfg = SlashburnConfig { max_block: 64, ..Default::default() };
        let ord = hub_spoke_order(&g, cfg);
        assert!(ord.blocks.iter().all(|b| b.len() <= 64));
    }

    #[test]
    fn star_hub_is_selected_first() {
        let g = Arc::new(star_graph(50));
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        assert_eq!(ord.hubs[0], 0, "the star center must be the first hub");
        // Removing the center shatters the star into singleton leaves.
        assert!(ord.blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let g = test_graph();
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        let p = ord.permutation();
        let inv = ord.inverse_permutation();
        for (new, &old) in p.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, new);
        }
    }

    #[test]
    fn block_ranges_tile_n1() {
        let g = test_graph();
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        let ranges = ord.block_ranges();
        let mut cursor = 0;
        for (i, (start, len)) in ranges.iter().enumerate() {
            assert_eq!(*start, cursor, "range {i}");
            cursor += len;
        }
        assert_eq!(cursor, ord.n1());
    }

    #[test]
    fn hubs_shrink_with_power_law_structure() {
        // On a heavy-tailed graph, hub count should be well under half of n.
        let g = test_graph();
        let ord = hub_spoke_order(&g, SlashburnConfig::default());
        assert!(ord.n2() < g.n() / 2, "hubs {} of {} — shattering failed", ord.n2(), g.n());
    }
}
