//! NB-LIN (Tong, Faloutsos & Pan, KAIS 2008): low-rank approximation of the
//! transition matrix plus the Sherman–Morrison–Woodbury identity.
//!
//! With `Ãᵀ ≈ U·Σ·Vᵀ` (rank `t`), the RWR resolvent becomes
//!
//! ```text
//! (I − (1−c)·ÃᵀU)⁻¹ ≈ I + (1−c)·U·Λ̃·Vᵀ,
//! Λ̃ = (Σ⁻¹ − (1−c)·Vᵀ·U)⁻¹
//! ```
//!
//! so a query is two thin dense mat-vecs: `r = c·q + c(1−c)·U·(Λ̃·(Vᵀ·q))`.
//! The index stores `U (n×t)`, `Vᵀ (t×n)` and `Λ̃ (t×t)` — the `O(n·t)`
//! memory that makes NB-LIN infeasible on large graphs in Fig. 1(a).

use crate::{MemoryBudget, PreprocessError, RwrMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};
use tpa_linalg::{randomized_svd, DenseMatrix, LinOp, Lu, SvdConfig};

/// NB-LIN parameters.
#[derive(Clone, Copy, Debug)]
pub struct NbLinConfig {
    /// Restart probability.
    pub c: f64,
    /// Rank `t` of the low-rank decomposition. Accuracy and memory both
    /// grow with `t`; the original paper partitions + decomposes, our
    /// variant decomposes globally with a randomized SVD.
    pub rank: usize,
    /// Oversampling for the randomized range finder.
    pub oversample: usize,
    /// Power iterations for the range finder.
    pub power_iters: usize,
    /// RNG seed for the sketch.
    pub rng_seed: u64,
}

impl Default for NbLinConfig {
    fn default() -> Self {
        Self { c: 0.15, rank: 64, oversample: 16, power_iters: 2, rng_seed: 0x9b11 }
    }
}

/// The transition operator `Ãᵀ` as a [`LinOp`] for the sketching SVD.
struct TransitionOp<'g> {
    graph: &'g CsrGraph,
    inv_out: Vec<f64>,
}

impl LinOp for TransitionOp<'_> {
    fn nrows(&self) -> usize {
        self.graph.n()
    }
    fn ncols(&self) -> usize {
        self.graph.n()
    }
    // y = Ãᵀ·x (gather over in-edges).
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for v in 0..self.graph.n() as NodeId {
            let mut acc = 0.0;
            for &u in self.graph.in_neighbors(v) {
                acc += x[u as usize] * self.inv_out[u as usize];
            }
            y[v as usize] = acc;
        }
    }
    // y = Ã·x (gather over out-edges).
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        for u in 0..self.graph.n() as NodeId {
            let mut acc = 0.0;
            for &v in self.graph.out_neighbors(u) {
                acc += x[v as usize];
            }
            y[u as usize] = acc * self.inv_out[u as usize];
        }
    }
}

/// The preprocessed NB-LIN method.
pub struct NbLin {
    cfg: NbLinConfig,

    /// Left factor `U`, `n × t`.
    u: DenseMatrix,
    /// Right factor `Vᵀ`, `t × n`.
    vt: DenseMatrix,
    /// Woodbury core `Λ̃`, `t × t`.
    core: DenseMatrix,
}

impl NbLin {
    /// Preprocessing: randomized SVD of `Ãᵀ` + core inversion.
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        cfg: NbLinConfig,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        let n = graph.n();
        let t = cfg.rank;
        let est_bytes = (2 * n * t + t * t) * 8;
        budget.check("NB_LIN", est_bytes)?;

        let op = TransitionOp { graph: &graph, inv_out: graph.inv_out_degrees() };
        let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
        let svd = randomized_svd(
            &op,
            SvdConfig { rank: t, oversample: cfg.oversample, power_iters: cfg.power_iters },
            &mut rng,
        );

        // Truncate to the *effective* rank: a graph whose transition matrix
        // has lower rank than requested yields vanishing σᵢ, which would
        // make Σ⁻¹ blow up. Keeping only σᵢ > tol·σ₀ loses nothing.
        let sigma0 = svd.s.first().copied().unwrap_or(0.0);
        if sigma0 <= 1e-12 {
            return Err(PreprocessError::Numerical("NB_LIN", "zero spectrum".into()));
        }
        let t_eff = svd.s.iter().take_while(|&&s| s > 1e-10 * sigma0.max(1.0)).count();
        let u = svd.u.take_cols(t_eff);
        let vt = svd.vt.take_rows(t_eff);
        let s = &svd.s[..t_eff];

        // Λ̃ = (Σ⁻¹ − (1−c)·Vᵀ·U)⁻¹.
        let mut m = vt.matmul(&u); // t_eff × t_eff
        let one_minus_c = 1.0 - cfg.c;
        for (r, &sr) in s.iter().enumerate() {
            for c2 in 0..t_eff {
                let mut v = -one_minus_c * m.get(r, c2);
                if r == c2 {
                    v += 1.0 / sr;
                }
                m.set(r, c2, v);
            }
        }
        let core = Lu::factor(&m)
            .map_err(|e| PreprocessError::Numerical("NB_LIN", e.to_string()))?
            .inverse();

        Ok(Self { cfg, u, vt, core })
    }
}

impl RwrMethod for NbLin {
    fn name(&self) -> &'static str {
        "NB_LIN"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let c = self.cfg.c;
        // Vᵀ·q is just column `seed` of Vᵀ.
        let vq = self.vt.col(seed as usize);
        let lv = self.core.matvec(&vq);
        let ulv = self.u.matvec(&lv);
        let mut r: Vec<f64> = ulv.into_iter().map(|x| c * (1.0 - c) * x).collect();
        r[seed as usize] += c;
        r
    }

    fn index_bytes(&self) -> usize {
        self.u.memory_bytes() + self.vt.memory_bytes() + self.core.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{sbm, star_graph};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn near_exact_on_low_rank_graph() {
        // A star graph's transition matrix has tiny effective rank.
        let g = Arc::new(star_graph(40));
        let nblin = NbLin::preprocess(
            Arc::clone(&g),
            NbLinConfig { rank: 8, ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let exact = tpa_core::exact_rwr(&g, 3, &CpiConfig { eps: 1e-12, ..Default::default() });
        let est = nblin.query(3);
        assert!(l1_dist(&est, &exact) < 1e-6, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn block_graph_good_accuracy_with_enough_rank() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let g = Arc::new(sbm(&[40, 40, 40], 0.3, 0.01, &mut rng));
        let nblin = NbLin::preprocess(
            Arc::clone(&g),
            NbLinConfig { rank: 60, ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let exact = tpa_core::exact_rwr(&g, 10, &CpiConfig::default());
        let est = nblin.query(10);
        assert!(l1_dist(&est, &exact) < 0.25, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn memory_grows_linearly_with_n() {
        let small = Arc::new(star_graph(50));
        let big = Arc::new(star_graph(200));
        let cfg = NbLinConfig { rank: 8, ..Default::default() };
        let a = NbLin::preprocess(small, cfg, MemoryBudget::unlimited()).unwrap();
        let b = NbLin::preprocess(big, cfg, MemoryBudget::unlimited()).unwrap();
        assert!(b.index_bytes() > 3 * a.index_bytes());
    }

    #[test]
    fn oom_on_tight_budget() {
        let g = Arc::new(star_graph(100));
        let err =
            NbLin::preprocess(g, NbLinConfig::default(), MemoryBudget::bytes(1000)).err().unwrap();
        assert!(matches!(err, PreprocessError::OutOfMemory { method: "NB_LIN", .. }));
    }
}
