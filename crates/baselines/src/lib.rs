//! # tpa-baselines — every competitor method from the paper's evaluation
//!
//! From-scratch implementations of the methods TPA is compared against
//! (paper §IV/§V), all behind one [`RwrMethod`] interface:
//!
//! | Type | Paper method | Kind |
//! |---|---|---|
//! | [`PowerIteration`] | exact CPI baseline | online-only, exact |
//! | [`ForwardPush`] | Andersen et al. \[1\] | online-only, approximate |
//! | [`MonteCarlo`] | classic MC RWR | online-only, approximate |
//! | [`Fora`] / [`ForaIndex`] | FORA / FORA+ \[27\] | push + MC (+ walk index) |
//! | [`Brppr`] | BRPPR \[6\] | online-only, local |
//! | [`NbLin`] | NB-LIN \[25\] | low-rank preprocessing |
//! | [`BearApprox`] | BEAR-APPROX \[22\] | block elimination, drop tol |
//! | [`HubPpr`] | HubPPR \[26\] | bidirectional + hub index |
//! | [`BePi`] | BePI \[12\] | exact block elim. + iterative |
//! | [`Tpa`] | **TPA (this paper)** | stranger + neighbor approx |
//!
//! Preprocessing methods accept a [`MemoryBudget`] reproducing the paper's
//! 200 GB machine cap: a method whose estimated index exceeds the budget
//! fails with [`PreprocessError::OutOfMemory`] instead of building it
//! (the "bars omitted" cases of Fig. 1).

#![warn(missing_docs)]

mod bear;
mod bepi;
mod bippr;
mod blockelim;
mod brppr;
mod fora;
mod forward_push;
mod hubppr;
mod monte_carlo;
mod nblin;
mod power_iteration;
mod rppr;
mod slashburn;
mod tpa_method;

pub use bear::{BearApprox, BearConfig};
pub use bepi::{BePi, BePiConfig};
pub use bippr::{Bippr, BipprConfig};
pub use brppr::{Brppr, BrpprConfig};
pub use fora::{Fora, ForaConfig, ForaIndex};
pub use forward_push::{forward_push, ForwardPush, PushResult};
pub use hubppr::{HubPpr, HubPprConfig};
pub use monte_carlo::{MonteCarlo, MonteCarloConfig};
pub use nblin::{NbLin, NbLinConfig};
pub use power_iteration::PowerIteration;
pub use rppr::{Rppr, RpprConfig};
pub use slashburn::{hub_spoke_order, HubSpokeOrdering, SlashburnConfig};
pub use tpa_method::Tpa;

use tpa_graph::NodeId;

/// A queryable RWR method: given a seed node, produce the full approximate
/// (or exact) RWR score vector. Preprocessing, if any, happened at
/// construction time.
///
/// Every implementor also serves the [`tpa_core::QueryEngine`] plan
/// shapes — multi-seed batches and top-k rankings — through the provided
/// methods below, so the serving layer can drive any method
/// interchangeably. Methods with a faster batched path (e.g. [`Tpa`],
/// whose fused block kernel shares edge passes across each lane tile of the batch) override
/// [`RwrMethod::query_batch`].
pub trait RwrMethod {
    /// Human-readable method name as used in the paper's figures.
    fn name(&self) -> &'static str;
    /// Full RWR score vector for `seed`.
    fn query(&self, seed: NodeId) -> Vec<f64>;
    /// Bytes of preprocessed data this method must keep for the online
    /// phase (0 for online-only methods) — the y-axis of Fig. 1(a).
    fn index_bytes(&self) -> usize;

    /// Full score vectors for a batch of seeds, in order. The default
    /// answers seeds one by one; override when a shared-pass kernel
    /// exists. Must return exactly what per-seed [`RwrMethod::query`]
    /// calls would.
    fn query_batch(&self, seeds: &[NodeId]) -> Vec<Vec<f64>> {
        seeds.iter().map(|&s| self.query(s)).collect()
    }

    /// The `k` best `(node, score)` pairs for `seed`, best first, ties
    /// toward lower ids — partial selection, no full sort.
    fn query_top_k(&self, seed: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        tpa_core::top_k_scored(&self.query(seed), k)
    }

    /// Top-k rankings for a whole batch (batched scoring + partial
    /// selection per lane).
    fn query_batch_top_k(&self, seeds: &[NodeId], k: usize) -> Vec<Vec<(NodeId, f64)>> {
        self.query_batch(seeds).iter().map(|scores| tpa_core::top_k_scored(scores, k)).collect()
    }
}

/// Memory cap for preprocessing, reproducing the paper's 200 GB workstation
/// limit at our scaled-down sizes.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemoryBudget(pub Option<usize>);

impl MemoryBudget {
    /// No cap.
    pub fn unlimited() -> Self {
        MemoryBudget(None)
    }

    /// Cap at `bytes`.
    pub fn bytes(bytes: usize) -> Self {
        MemoryBudget(Some(bytes))
    }

    /// Errors if `estimated` exceeds the budget.
    pub fn check(&self, method: &'static str, estimated: usize) -> Result<(), PreprocessError> {
        match self.0 {
            Some(limit) if estimated > limit => Err(PreprocessError::OutOfMemory {
                method,
                estimated_bytes: estimated,
                budget_bytes: limit,
            }),
            _ => Ok(()),
        }
    }
}

/// Preprocessing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PreprocessError {
    /// Estimated index size exceeds the memory budget (the paper's ">200GB"
    /// omitted bars).
    OutOfMemory {
        /// Method that failed.
        method: &'static str,
        /// Estimated index size in bytes.
        estimated_bytes: usize,
        /// Budget that was exceeded.
        budget_bytes: usize,
    },
    /// Numerical failure (singular block, non-convergence).
    Numerical(&'static str, String),
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::OutOfMemory { method, estimated_bytes, budget_bytes } => write!(
                f,
                "{method}: estimated index {estimated_bytes}B exceeds budget {budget_bytes}B (OOM)"
            ),
            PreprocessError::Numerical(method, msg) => write!(f, "{method}: {msg}"),
        }
    }
}

impl std::error::Error for PreprocessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_unlimited_never_fails() {
        assert!(MemoryBudget::unlimited().check("x", usize::MAX).is_ok());
    }

    #[test]
    fn budget_enforced() {
        let b = MemoryBudget::bytes(100);
        assert!(b.check("x", 100).is_ok());
        let err = b.check("x", 101).unwrap_err();
        match err {
            PreprocessError::OutOfMemory { estimated_bytes, budget_bytes, .. } => {
                assert_eq!(estimated_bytes, 101);
                assert_eq!(budget_bytes, 100);
            }
            other => panic!("unexpected {other}"),
        }
    }
}
