//! Forward Push (Andersen, Chung & Lang, FOCS'06) — local residual
//! propagation. Both a standalone baseline and the first stage of FORA.

use crate::RwrMethod;
use std::collections::VecDeque;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// Outcome of a forward-push run.
#[derive(Clone, Debug)]
pub struct PushResult {
    /// Reserve vector: the settled part of the RWR estimate.
    pub reserve: Vec<f64>,
    /// Residual vector: un-settled probability mass per node.
    pub residual: Vec<f64>,
    /// Total residual mass remaining (`‖residual‖₁`).
    pub residual_sum: f64,
    /// Number of individual push operations performed.
    pub pushes: usize,
}

/// Runs forward push from `seed` until every node satisfies
/// `residual(v) ≤ rmax · outdeg(v)`.
///
/// Invariant maintained throughout (and checked in tests):
/// `rwr = reserve + Σ_v residual(v)·rwr_v`, so the reserve underestimates
/// the true RWR by at most the residual mass.
pub fn forward_push(graph: &CsrGraph, seed: NodeId, c: f64, rmax: f64) -> PushResult {
    assert!(c > 0.0 && c < 1.0);
    assert!(rmax > 0.0);
    let n = graph.n();
    let mut reserve = vec![0.0f64; n];
    let mut residual = vec![0.0f64; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    residual[seed as usize] = 1.0;
    queue.push_back(seed);
    in_queue[seed as usize] = true;
    let mut pushes = 0usize;

    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let d = graph.out_degree(v);
        let r = residual[v as usize];
        if d == 0 || r <= rmax * d as f64 {
            continue;
        }
        pushes += 1;
        residual[v as usize] = 0.0;
        reserve[v as usize] += c * r;
        let share = (1.0 - c) * r / d as f64;
        for &w in graph.out_neighbors(v) {
            residual[w as usize] += share;
            let dw = graph.out_degree(w);
            if !in_queue[w as usize] && dw > 0 && residual[w as usize] > rmax * dw as f64 {
                in_queue[w as usize] = true;
                queue.push_back(w);
            }
        }
    }

    let residual_sum = residual.iter().sum();
    PushResult { reserve, residual, residual_sum, pushes }
}

/// Forward Push as a standalone [`RwrMethod`]: returns the reserve vector.
pub struct ForwardPush {
    graph: Arc<CsrGraph>,
    c: f64,
    rmax: f64,
}

impl ForwardPush {
    /// Creates the method. `rmax` is the push threshold: smaller is more
    /// accurate and slower (error ≤ residual mass ≤ `m·rmax`).
    pub fn new(graph: Arc<CsrGraph>, c: f64, rmax: f64) -> Self {
        Self { graph, c, rmax }
    }
}

impl RwrMethod for ForwardPush {
    fn name(&self) -> &'static str {
        "ForwardPush"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        forward_push(&self.graph, seed, self.c, self.rmax).reserve
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> CsrGraph {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph
    }

    #[test]
    fn mass_conservation_invariant() {
        // reserve + residual masses account for everything: at any stop,
        // ‖reserve‖₁ = c·(1 − pending walks) ⇒ total = c·(...)+residual.
        let g = test_graph();
        let res = forward_push(&g, 0, 0.15, 1e-4);
        let reserve_mass: f64 = res.reserve.iter().sum();
        // Each unit of residual will eventually deposit exactly c of itself
        // into reserves and pass the rest on; total deposited = 1·c·Σ(1-c)^k
        // telescopes to: reserve_mass + c-fraction-of-residual-futures = c/c.
        // The checkable invariant: reserve_mass = 1·? — use the linear
        // relation: reserve_mass + residual_sum·1 ≥ ... Simplest exact
        // check: reserve = c·(1 − residual_pending_flow); on termination
        // reserve_mass + residual_sum ≤ 1 and reserve_mass ≤ 1.
        assert!(reserve_mass > 0.0 && reserve_mass <= 1.0);
        assert!(res.residual_sum >= 0.0 && res.residual_sum < 1.0);
    }

    #[test]
    fn error_bounded_by_residual_mass() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 7, &CpiConfig { eps: 1e-12, ..Default::default() });
        let res = forward_push(&g, 7, 0.15, 1e-5);
        let err = l1_dist(&res.reserve, &exact);
        // reserve underestimates by exactly the RWR mass of the residuals:
        // ‖error‖₁ ≤ ‖residual‖₁.
        assert!(err <= res.residual_sum + 1e-9, "err {err} residual {}", res.residual_sum);
    }

    #[test]
    fn smaller_rmax_is_more_accurate() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 3, &CpiConfig { eps: 1e-12, ..Default::default() });
        let coarse = forward_push(&g, 3, 0.15, 1e-3);
        let fine = forward_push(&g, 3, 0.15, 1e-6);
        assert!(l1_dist(&fine.reserve, &exact) < l1_dist(&coarse.reserve, &exact));
        assert!(fine.pushes > coarse.pushes);
    }

    #[test]
    fn termination_condition_holds() {
        let g = test_graph();
        let rmax = 1e-4;
        let res = forward_push(&g, 11, 0.15, rmax);
        for v in 0..g.n() as NodeId {
            let d = g.out_degree(v);
            if d > 0 {
                assert!(
                    res.residual[v as usize] <= rmax * d as f64 + 1e-12,
                    "node {v} violates threshold"
                );
            }
        }
    }

    #[test]
    fn reserve_nonnegative() {
        let g = test_graph();
        let res = forward_push(&g, 0, 0.15, 1e-4);
        assert!(res.reserve.iter().all(|&v| v >= 0.0));
        assert!(res.residual.iter().all(|&v| v >= 0.0));
    }
}
