//! BEAR-APPROX (Shin, Jung, Sael & Kang, SIGMOD'15): block elimination with
//! a precomputed, drop-tolerance-pruned Schur complement inverse.
//!
//! Preprocessing permutes the RWR system matrix `H = I − (1−c)·Ãᵀ` into
//! hub/spoke order, inverts the block-diagonal `H₁₁` per block, forms the
//! dense Schur complement `S = H₂₂ − H₂₁·H₁₁⁻¹·H₁₂`, inverts it, and prunes
//! both inverses with a drop tolerance (the paper sets `ξ = n^{-1/2}` for
//! BEAR-APPROX). Queries are four sparse mat-vecs. The `O(n₂²)` dense Schur
//! work is why BEAR's preprocessing dominates Fig. 1(b) and why it runs out
//! of memory on larger graphs in Fig. 1(a).

use crate::blockelim::{build_partitions, invert_h11, split_seed, unpermute};
use crate::slashburn::{hub_spoke_order, SlashburnConfig};
use crate::{MemoryBudget, PreprocessError, RwrMethod};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};
use tpa_linalg::{Lu, SparseMatrix};

/// BEAR-APPROX parameters.
#[derive(Clone, Copy, Debug)]
pub struct BearConfig {
    /// Restart probability.
    pub c: f64,
    /// Drop tolerance ξ for the precomputed inverses; `None` uses the
    /// paper's `n^{-1/2}`.
    pub drop_tolerance: Option<f64>,
    /// Hub/spoke reordering parameters.
    pub slashburn: SlashburnConfig,
}

impl Default for BearConfig {
    fn default() -> Self {
        Self { c: 0.15, drop_tolerance: None, slashburn: SlashburnConfig::default() }
    }
}

/// The preprocessed BEAR-APPROX method.
pub struct BearApprox {
    c: f64,
    n1: usize,
    perm: Vec<NodeId>,
    inv_perm: Vec<u32>,
    h11_inv: SparseMatrix,
    h12: SparseMatrix,
    h21: SparseMatrix,
    schur_inv: SparseMatrix,
}

impl BearApprox {
    /// Preprocessing phase: reorder, partition, invert.
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        cfg: BearConfig,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        let n = graph.n();
        let xi = cfg.drop_tolerance.unwrap_or(1.0 / (n as f64).sqrt());
        let ordering = hub_spoke_order(&graph, cfg.slashburn);
        let (n1, n2) = (ordering.n1(), ordering.n2());

        // The dense Schur complement, its inverse, and the LU workspace
        // dominate memory: 3·n2²·8 bytes, checked before any expensive work.
        let est = 3 * n2 * n2 * 8 + graph.m() * 12;
        budget.check("BEAR_APPROX", est)?;

        let parts = build_partitions(&graph, &ordering, cfg.c);
        let h11_inv = invert_h11(&parts.h11, &ordering, xi, "BEAR_APPROX")?;

        // S = H22 − H21·H11⁻¹·H12, dense.
        let x = h11_inv.matmul(&parts.h12); // n1 × n2
        let sub = parts.h21.matmul(&x); // n2 × n2
        let mut s = parts.h22.to_dense();
        for r in 0..n2 {
            let (cols, vals) = sub.row(r);
            for (c2, v) in cols.iter().zip(vals) {
                let cur = s.get(r, *c2 as usize);
                s.set(r, *c2 as usize, cur - v);
            }
        }
        let schur_inv_dense = Lu::factor(&s)
            .map_err(|e| PreprocessError::Numerical("BEAR_APPROX", e.to_string()))?
            .inverse();
        let schur_inv = SparseMatrix::from_dense(&schur_inv_dense, xi);

        let me = Self {
            c: cfg.c,
            n1,
            perm: ordering.permutation(),
            inv_perm: ordering.inverse_permutation(),
            h11_inv,
            h12: parts.h12,
            h21: parts.h21,
            schur_inv,
        };
        // Post-check actual footprint too (pruning may not have saved enough).
        budget.check("BEAR_APPROX", me.index_bytes())?;
        Ok(me)
    }
}

impl RwrMethod for BearApprox {
    fn name(&self) -> &'static str {
        "BEAR_APPROX"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        // Block elimination (BEAR eq. 3/4):
        //   x2 = S⁻¹·(q2 − H21·H11⁻¹·q1)
        //   x1 = H11⁻¹·(q1 − H12·x2)
        //   r = c·P⁻¹·[x1; x2]
        let (q1, q2, _) = split_seed(&self.inv_perm, self.n1, seed);
        let t1 = self.h11_inv.matvec(&q1);
        let h21t1 = self.h21.matvec(&t1);
        let q2_tilde: Vec<f64> = q2.iter().zip(&h21t1).map(|(a, b)| a - b).collect();
        let x2 = self.schur_inv.matvec(&q2_tilde);
        let h12x2 = self.h12.matvec(&x2);
        let rhs1: Vec<f64> = q1.iter().zip(&h12x2).map(|(a, b)| a - b).collect();
        let x1 = self.h11_inv.matvec(&rhs1);
        unpermute(&self.perm, self.c, &x1, &x2)
    }

    fn index_bytes(&self) -> usize {
        self.h11_inv.memory_bytes()
            + self.h12.memory_bytes()
            + self.h21.memory_bytes()
            + self.schur_inv.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        Arc::new(lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn exact_when_drop_tolerance_zero() {
        let g = test_graph();
        let bear = BearApprox::preprocess(
            Arc::clone(&g),
            BearConfig { drop_tolerance: Some(0.0), ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let exact = tpa_core::exact_rwr(&g, 11, &CpiConfig { eps: 1e-14, ..Default::default() });
        let est = bear.query(11);
        assert!(l1_dist(&est, &exact) < 1e-8, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn approx_with_small_drop_tolerance() {
        // n^{-1/2} is calibrated for the paper's 10⁵–10⁸-node graphs; at
        // test scale (n=300) it prunes far too aggressively, so pin an
        // absolute tolerance instead.
        let g = test_graph();
        let bear = BearApprox::preprocess(
            Arc::clone(&g),
            BearConfig { drop_tolerance: Some(1e-4), ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let exact = tpa_core::exact_rwr(&g, 42, &CpiConfig::default());
        let est = bear.query(42);
        assert!(l1_dist(&est, &exact) < 0.05, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn larger_drop_tolerance_increases_error() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 7, &CpiConfig::default());
        let errs: Vec<f64> = [0.0, 1e-3, 5e-2]
            .iter()
            .map(|&tol| {
                let bear = BearApprox::preprocess(
                    Arc::clone(&g),
                    BearConfig { drop_tolerance: Some(tol), ..Default::default() },
                    MemoryBudget::unlimited(),
                )
                .unwrap();
                l1_dist(&bear.query(7), &exact)
            })
            .collect();
        assert!(errs[0] <= errs[1] + 1e-12 && errs[1] <= errs[2] + 1e-12, "{errs:?}");
    }

    #[test]
    fn drop_tolerance_shrinks_index() {
        let g = test_graph();
        let exact_idx = BearApprox::preprocess(
            Arc::clone(&g),
            BearConfig { drop_tolerance: Some(0.0), ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let pruned = BearApprox::preprocess(
            Arc::clone(&g),
            BearConfig { drop_tolerance: Some(1e-2), ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        assert!(pruned.index_bytes() < exact_idx.index_bytes());
    }

    #[test]
    fn oom_on_tight_budget() {
        let g = test_graph();
        let err = BearApprox::preprocess(g, BearConfig::default(), MemoryBudget::bytes(1000))
            .err()
            .unwrap();
        assert!(matches!(err, PreprocessError::OutOfMemory { method: "BEAR_APPROX", .. }));
    }

    #[test]
    fn hub_seed_and_spoke_seed_both_work() {
        let g = test_graph();
        let bear = BearApprox::preprocess(
            Arc::clone(&g),
            BearConfig { drop_tolerance: Some(0.0), ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let cfg = CpiConfig { eps: 1e-14, ..Default::default() };
        // A hub (high degree) and a spoke (low degree) seed.
        let hub = (0..g.n() as NodeId).max_by_key(|&v| g.out_degree(v)).unwrap();
        let spoke = (0..g.n() as NodeId).min_by_key(|&v| g.out_degree(v)).unwrap();
        for seed in [hub, spoke] {
            let err = l1_dist(&bear.query(seed), &tpa_core::exact_rwr(&g, seed, &cfg));
            assert!(err < 1e-8, "seed {seed}: {err}");
        }
    }
}
