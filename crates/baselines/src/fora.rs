//! FORA (Wang et al., KDD'17): Forward Push with early termination followed
//! by Monte Carlo walks on the remaining residuals; FORA+ additionally
//! precomputes and indexes the walks' destinations.
//!
//! Estimator: after a push with threshold `rmax`,
//! `rwr(t) = reserve(t) + Σ_v residual(v)·rwr_v(t)`; the second term is
//! estimated by `⌈residual(v)·ω⌉` walks from each residual node `v`.

use crate::{forward_push, MemoryBudget, PreprocessError, RwrMethod};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// FORA parameters; defaults follow the paper's evaluation settings
/// `(δ, p_f, ε) = (1/n, 1/n, 0.5)`.
#[derive(Clone, Copy, Debug)]
pub struct ForaConfig {
    /// Restart probability.
    pub c: f64,
    /// Relative error target ε.
    pub epsilon: f64,
    /// Minimum score threshold δ; `None` means `1/n`.
    pub delta: Option<f64>,
    /// Failure probability `p_f`; `None` means `1/n`.
    pub p_fail: Option<f64>,
    /// RNG seed for walk generation.
    pub rng_seed: u64,
    /// Scale factor applied to the theoretical walk count ω (the authors'
    /// code exposes the same knob; `1.0` = theory, smaller = faster).
    pub omega_scale: f64,
}

impl Default for ForaConfig {
    fn default() -> Self {
        Self {
            c: 0.15,
            epsilon: 0.5,
            delta: None,
            p_fail: None,
            rng_seed: 0xf04a,
            omega_scale: 1.0,
        }
    }
}

impl ForaConfig {
    /// Walk-count coefficient `ω = (2ε/3 + 2)·ln(2/p_f)/(ε²·δ)`.
    pub fn omega(&self, n: usize) -> f64 {
        let delta = self.delta.unwrap_or(1.0 / n as f64);
        let p_f = self.p_fail.unwrap_or(1.0 / n as f64);
        self.omega_scale * (2.0 * self.epsilon / 3.0 + 2.0) * (2.0 / p_f).ln()
            / (self.epsilon * self.epsilon * delta)
    }

    /// Cost-balancing push threshold: pushing costs `O(m·rmax·ω)` fewer
    /// walks per unit of push work, so the optimum equalizes
    /// `1/rmax ≈ rmax·ω·m`, i.e. `rmax = 1/√(ω·m)`.
    pub fn rmax(&self, n: usize, m: usize) -> f64 {
        (1.0 / (self.omega(n) * m as f64)).sqrt()
    }
}

/// FORA without an index: push + fresh walks per query.
pub struct Fora {
    graph: Arc<CsrGraph>,
    cfg: ForaConfig,
    rng: Mutex<StdRng>,
}

impl Fora {
    /// Creates the method.
    pub fn new(graph: Arc<CsrGraph>, cfg: ForaConfig) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(cfg.rng_seed));
        Self { graph, cfg, rng }
    }

    fn combine(
        graph: &CsrGraph,
        cfg: &ForaConfig,
        seed: NodeId,
        mut sample_walk: impl FnMut(NodeId, usize) -> NodeId,
    ) -> Vec<f64> {
        let n = graph.n();
        let m = graph.m();
        let rmax = cfg.rmax(n, m);
        let omega = cfg.omega(n);
        let push = forward_push(graph, seed, cfg.c, rmax);
        let mut scores = push.reserve;
        for v in 0..n as NodeId {
            let r = push.residual[v as usize];
            if r <= 0.0 {
                continue;
            }
            let walks = (r * omega).ceil().max(1.0) as usize;
            let w = r / walks as f64;
            for i in 0..walks {
                let end = sample_walk(v, i);
                scores[end as usize] += w;
            }
        }
        scores
    }
}

impl RwrMethod for Fora {
    fn name(&self) -> &'static str {
        "FORA"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let mut rng = self.rng.lock();
        *rng = StdRng::seed_from_u64(self.cfg.rng_seed ^ ((seed as u64) << 18));
        Self::combine(&self.graph, &self.cfg, seed, |v, _| {
            walk(&self.graph, self.cfg.c, v, &mut *rng)
        })
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

/// FORA+ — the indexed variant benchmarked in Fig. 1: destinations of
/// enough walks per node to cover the worst-case residual
/// (`residual(v) ≤ rmax·outdeg(v)` after any push) are precomputed.
pub struct ForaIndex {
    graph: Arc<CsrGraph>,
    cfg: ForaConfig,
    /// `walk_offsets[v]..walk_offsets[v+1]` indexes `walk_dest`.
    walk_offsets: Vec<usize>,
    /// Precomputed walk destinations, `walks_for(v)` per node.
    walk_dest: Vec<NodeId>,
}

impl ForaIndex {
    /// Builds the walk index (FORA+'s preprocessing phase).
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        cfg: ForaConfig,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        let n = graph.n();
        let m = graph.m();
        let omega = cfg.omega(n);
        let rmax = cfg.rmax(n, m);

        // Estimate before building: Σ_v ⌈rmax·d(v)·ω⌉ ≈ rmax·ω·m + n walks.
        let est_walks = (rmax * omega * m as f64).ceil() as usize + n;
        let est_bytes = est_walks * std::mem::size_of::<NodeId>() + (n + 1) * 8;
        budget.check("FORA", est_bytes)?;

        let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
        let mut walk_offsets = Vec::with_capacity(n + 1);
        let mut walk_dest: Vec<NodeId> = Vec::with_capacity(est_walks);
        walk_offsets.push(0);
        for v in 0..n as NodeId {
            let need = (rmax * graph.out_degree(v) as f64 * omega).ceil().max(1.0) as usize;
            for _ in 0..need {
                walk_dest.push(walk(&graph, cfg.c, v, &mut rng));
            }
            walk_offsets.push(walk_dest.len());
        }
        Ok(Self { graph, cfg, walk_offsets, walk_dest })
    }

    /// Number of stored walks.
    pub fn stored_walks(&self) -> usize {
        self.walk_dest.len()
    }
}

impl RwrMethod for ForaIndex {
    fn name(&self) -> &'static str {
        "FORA"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        Fora::combine(&self.graph, &self.cfg, seed, |v, i| {
            let (s, e) = (self.walk_offsets[v as usize], self.walk_offsets[v as usize + 1]);
            // Reuse stored destinations round-robin; the index is sized for
            // the worst-case residual so wrap-around is rare.
            self.walk_dest[s + i % (e - s).max(1)]
        })
    }

    fn index_bytes(&self) -> usize {
        self.walk_dest.len() * std::mem::size_of::<NodeId>() + self.walk_offsets.len() * 8
    }
}

/// One restart-terminated walk from `start`.
fn walk<R: Rng + ?Sized>(graph: &CsrGraph, c: f64, start: NodeId, rng: &mut R) -> NodeId {
    let mut v = start;
    loop {
        if rng.gen::<f64>() < c {
            return v;
        }
        let neigh = graph.out_neighbors(v);
        if neigh.is_empty() {
            return v;
        }
        v = neigh[rng.gen_range(0..neigh.len())];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        Arc::new(lfr_lite(LfrConfig { n: 250, m: 2000, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn fora_close_to_exact() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 5, &CpiConfig::default());
        let fora = Fora::new(Arc::clone(&g), ForaConfig::default());
        let est = fora.query(5);
        assert!(l1_dist(&est, &exact) < 0.05, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn fora_mass_close_to_one() {
        let g = test_graph();
        let fora = Fora::new(g, ForaConfig::default());
        let est = fora.query(0);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn indexed_fora_close_to_exact() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 17, &CpiConfig::default());
        let fora =
            ForaIndex::preprocess(Arc::clone(&g), ForaConfig::default(), MemoryBudget::unlimited())
                .unwrap();
        let est = fora.query(17);
        assert!(l1_dist(&est, &exact) < 0.08, "err {}", l1_dist(&est, &exact));
        assert!(fora.index_bytes() > 0);
    }

    #[test]
    fn index_respects_budget() {
        let g = test_graph();
        let err =
            ForaIndex::preprocess(g, ForaConfig::default(), MemoryBudget::bytes(10)).err().unwrap();
        assert!(matches!(err, PreprocessError::OutOfMemory { method: "FORA", .. }));
    }

    #[test]
    fn rmax_balances_costs() {
        let cfg = ForaConfig::default();
        let (n, m) = (10_000, 100_000);
        let rmax = cfg.rmax(n, m);
        let omega = cfg.omega(n);
        // Cost-balance identity: rmax²·ω·m = 1.
        assert!((rmax * rmax * omega * m as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fora_deterministic_per_seed() {
        let g = test_graph();
        let fora = Fora::new(g, ForaConfig::default());
        assert_eq!(fora.query(3), fora.query(3));
    }
}
