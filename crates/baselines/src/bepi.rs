//! BePI (Jung, Park, Sael & Kang, SIGMOD'17): exact RWR by block
//! elimination with an *iteratively solved* Schur complement.
//!
//! Same hub/spoke partition as BEAR, but the Schur complement
//! `S = H₂₂ − H₂₁·H₁₁⁻¹·H₁₂` is never inverted — BePI solves
//! `S·x₂ = q̃₂` iteratively at query time. We go one step further than the
//! original (which materializes a sparse S): the solve is *matrix-free*,
//! applying `S` through its three factors per Krylov iteration. This keeps
//! preprocessing memory at `O(m + Σ bᵢ²)` with zero fill-in — the
//! substitution is documented in DESIGN.md and preserves BePI's profile:
//! modest index, fast preprocessing, online phase slower than TPA's
//! (the Fig. 10 comparison).

use crate::blockelim::{build_partitions, invert_h11, split_seed, unpermute};
use crate::slashburn::{hub_spoke_order, SlashburnConfig};
use crate::{MemoryBudget, PreprocessError, RwrMethod};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};
use tpa_linalg::{solvers::bicgstab, LinOp, SparseMatrix};

/// BePI parameters.
#[derive(Clone, Copy, Debug)]
pub struct BePiConfig {
    /// Restart probability.
    pub c: f64,
    /// Tolerance of the iterative Schur solve (relative residual).
    pub solve_tol: f64,
    /// Iteration cap for the Schur solve.
    pub max_solve_iters: usize,
    /// Hub/spoke reordering parameters.
    pub slashburn: SlashburnConfig,
}

impl Default for BePiConfig {
    fn default() -> Self {
        Self {
            c: 0.15,
            solve_tol: 1e-9,
            max_solve_iters: 500,
            slashburn: SlashburnConfig::default(),
        }
    }
}

/// The preprocessed BePI method.
pub struct BePi {
    cfg: BePiConfig,
    n1: usize,
    perm: Vec<NodeId>,
    inv_perm: Vec<u32>,
    h11_inv: SparseMatrix,
    h12: SparseMatrix,
    h21: SparseMatrix,
    h22: SparseMatrix,
}

/// Matrix-free Schur operator `S·x = H₂₂·x − H₂₁·(H₁₁⁻¹·(H₁₂·x))`.
struct SchurOp<'a> {
    h11_inv: &'a SparseMatrix,
    h12: &'a SparseMatrix,
    h21: &'a SparseMatrix,
    h22: &'a SparseMatrix,
}

impl LinOp for SchurOp<'_> {
    fn nrows(&self) -> usize {
        self.h22.nrows()
    }
    fn ncols(&self) -> usize {
        self.h22.ncols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let t = self.h12.matvec(x);
        let t = self.h11_inv.matvec(&t);
        let t = self.h21.matvec(&t);
        let base = self.h22.matvec(x);
        for ((yi, b), s) in y.iter_mut().zip(base).zip(t) {
            *yi = b - s;
        }
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        // Sᵀ·x = H₂₂ᵀ·x − H₁₂ᵀ·H₁₁⁻ᵀ·H₂₁ᵀ·x.
        let t = self.h21.matvec_t(x);
        let t = self.h11_inv.matvec_t(&t);
        let t = self.h12.matvec_t(&t);
        let base = self.h22.matvec_t(x);
        for ((yi, b), s) in y.iter_mut().zip(base).zip(t) {
            *yi = b - s;
        }
    }
}

impl BePi {
    /// Preprocessing: reorder, invert `H11` per block, keep the partitions.
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        cfg: BePiConfig,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        let ordering = hub_spoke_order(&graph, cfg.slashburn);
        let parts = build_partitions(&graph, &ordering, cfg.c);
        // Exact block inverses (drop 0): BePI is an exact method.
        let h11_inv = invert_h11(&parts.h11, &ordering, 0.0, "BePI")?;

        let me = Self {
            cfg,
            n1: ordering.n1(),
            perm: ordering.permutation(),
            inv_perm: ordering.inverse_permutation(),
            h11_inv,
            h12: parts.h12,
            h21: parts.h21,
            h22: parts.h22,
        };
        budget.check("BePI", me.index_bytes())?;
        Ok(me)
    }

    /// Solves the Schur system `S·x₂ = rhs` matrix-free.
    pub fn solve_schur(&self, rhs: &[f64]) -> Vec<f64> {
        let op = SchurOp { h11_inv: &self.h11_inv, h12: &self.h12, h21: &self.h21, h22: &self.h22 };
        bicgstab(&op, rhs, self.cfg.solve_tol, self.cfg.max_solve_iters).x
    }
}

impl RwrMethod for BePi {
    fn name(&self) -> &'static str {
        "BePI"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let (q1, q2, _) = split_seed(&self.inv_perm, self.n1, seed);
        let t1 = self.h11_inv.matvec(&q1);
        let h21t1 = self.h21.matvec(&t1);
        let q2_tilde: Vec<f64> = q2.iter().zip(&h21t1).map(|(a, b)| a - b).collect();
        let x2 = self.solve_schur(&q2_tilde);
        let h12x2 = self.h12.matvec(&x2);
        let rhs1: Vec<f64> = q1.iter().zip(&h12x2).map(|(a, b)| a - b).collect();
        let x1 = self.h11_inv.matvec(&rhs1);
        unpermute(&self.perm, self.cfg.c, &x1, &x2)
    }

    fn index_bytes(&self) -> usize {
        self.h11_inv.memory_bytes()
            + self.h12.memory_bytes()
            + self.h21.memory_bytes()
            + self.h22.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(37);
        Arc::new(lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn bepi_is_exact() {
        let g = test_graph();
        let bepi =
            BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited())
                .unwrap();
        let cfg = CpiConfig { eps: 1e-13, ..Default::default() };
        for seed in [0u32, 50, 150, 299] {
            let err = l1_dist(&bepi.query(seed), &tpa_core::exact_rwr(&g, seed, &cfg));
            assert!(err < 1e-6, "seed {seed}: err {err}");
        }
    }

    #[test]
    fn schur_operator_matches_explicit_matrix() {
        // Matrix-free S·x must equal the assembled Schur complement.
        let g = test_graph();
        let bepi =
            BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited())
                .unwrap();
        let n2 = bepi.h22.nrows();
        let x_mid = bepi.h11_inv.matmul(&bepi.h12);
        let sub = bepi.h21.matmul(&x_mid);
        let op = SchurOp { h11_inv: &bepi.h11_inv, h12: &bepi.h12, h21: &bepi.h21, h22: &bepi.h22 };
        let mut probe = vec![0.0; n2];
        let mut y = vec![0.0; n2];
        for p in [0usize, n2 / 2, n2 - 1] {
            probe.iter_mut().for_each(|v| *v = 0.0);
            probe[p] = 1.0;
            op.apply(&probe, &mut y);
            for (r, &yr) in y.iter().enumerate() {
                let want = bepi.h22.get(r, p) - sub.get(r, p);
                assert!(
                    (yr - want).abs() < 1e-10,
                    "probe {p} row {r}: op {} vs explicit {}",
                    yr,
                    want
                );
            }
        }
    }

    #[test]
    fn index_is_linear_in_graph_size() {
        // No Schur fill-in: the index is bounded by the partitions plus
        // the block inverses.
        let g = test_graph();
        let bepi =
            BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited())
                .unwrap();
        assert!(bepi.index_bytes() > 0);
        // Generous structural cap: H12 + H21 + H22 ≤ ~m entries each side,
        // H11⁻¹ ≤ n1 · max_block entries.
        let cap = (3 * g.m() + g.n() * 256 + 4 * g.n()) * 20;
        assert!(bepi.index_bytes() < cap, "{} vs {}", bepi.index_bytes(), cap);
    }

    #[test]
    fn oom_enforced() {
        let g = test_graph();
        let err =
            BePi::preprocess(g, BePiConfig::default(), MemoryBudget::bytes(64)).err().unwrap();
        assert!(matches!(err, PreprocessError::OutOfMemory { method: "BePI", .. }));
    }

    #[test]
    fn mass_sums_to_one() {
        let g = test_graph();
        let bepi =
            BePi::preprocess(Arc::clone(&g), BePiConfig::default(), MemoryBudget::unlimited())
                .unwrap();
        let r = bepi.query(10);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }
}
