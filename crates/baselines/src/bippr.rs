//! BiPPR — bidirectional single-pair PPR estimation (Lofgren, Banerjee &
//! Goel, WSDM'16). The paper's related work positions HubPPR as "the most
//! recent bi-directional method"; BiPPR is its index-free core, included
//! here both as the natural single-pair API and as an ablation of
//! HubPPR-without-the-hub-index.
//!
//! Estimator: backward push from the target `t` until every residual is
//! below `rmax`, then `W` forward walks from the source `s`:
//! `π(s,t) ≈ p_t(s) + (1/W)·Σᵢ r_t(Xᵢ)` where `Xᵢ` is walk `i`'s endpoint.
//! The estimate is unbiased with per-walk increments bounded by `rmax`,
//! giving relative-error concentration for scores above `δ`.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// BiPPR parameters.
#[derive(Clone, Copy, Debug)]
pub struct BipprConfig {
    /// Restart probability.
    pub c: f64,
    /// Backward-push residual threshold.
    pub rmax: f64,
    /// Forward walks per estimate.
    pub walks: usize,
    /// RNG seed.
    pub rng_seed: u64,
}

impl Default for BipprConfig {
    fn default() -> Self {
        Self { c: 0.15, rmax: 1e-4, walks: 20_000, rng_seed: 0xb1dd }
    }
}

/// Single-pair bidirectional PPR estimator.
pub struct Bippr {
    graph: Arc<CsrGraph>,
    cfg: BipprConfig,
    rng: Mutex<StdRng>,
}

impl Bippr {
    /// Creates the estimator.
    pub fn new(graph: Arc<CsrGraph>, cfg: BipprConfig) -> Self {
        Self { graph, cfg, rng: Mutex::new(StdRng::seed_from_u64(cfg.rng_seed)) }
    }

    /// Estimates the single RWR score `π(source, target)`.
    pub fn estimate(&self, source: NodeId, target: NodeId) -> f64 {
        let (reserve, residual) = self.backward_push(target);
        let mut rng = self.rng.lock();
        *rng = StdRng::seed_from_u64(self.cfg.rng_seed ^ ((source as u64) << 24) ^ (target as u64));
        let mut estimate = reserve[source as usize];
        let mut acc = 0.0;
        for _ in 0..self.cfg.walks {
            let mut v = source;
            loop {
                if rng.gen::<f64>() < self.cfg.c {
                    break;
                }
                let neigh = self.graph.out_neighbors(v);
                if neigh.is_empty() {
                    break;
                }
                v = neigh[rng.gen_range(0..neigh.len())];
            }
            acc += residual[v as usize];
        }
        estimate += acc / self.cfg.walks as f64;
        estimate
    }

    /// Dense backward push from `target` (returns reserve + residual).
    fn backward_push(&self, target: NodeId) -> (Vec<f64>, Vec<f64>) {
        let n = self.graph.n();
        let c = self.cfg.c;
        let rmax = self.cfg.rmax;
        let mut reserve = vec![0.0f64; n];
        let mut residual = vec![0.0f64; n];
        let mut in_queue = vec![false; n];
        let mut queue = VecDeque::from([target]);
        residual[target as usize] = 1.0;
        in_queue[target as usize] = true;
        while let Some(v) = queue.pop_front() {
            in_queue[v as usize] = false;
            let r = residual[v as usize];
            if r <= rmax {
                continue;
            }
            residual[v as usize] = 0.0;
            reserve[v as usize] += c * r;
            for &u in self.graph.in_neighbors(v) {
                let du = self.graph.out_degree(u).max(1);
                residual[u as usize] += (1.0 - c) * r / du as f64;
                if !in_queue[u as usize] && residual[u as usize] > rmax {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
        (reserve, residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(59);
        Arc::new(lfr_lite(LfrConfig { n: 200, m: 1600, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn single_pair_close_to_exact() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 3, &CpiConfig { eps: 1e-12, ..Default::default() });
        let bippr = Bippr::new(Arc::clone(&g), BipprConfig::default());
        // Check several targets including high- and low-score ones.
        for t in [3u32, 10, 50, 150] {
            let est = bippr.estimate(3, t);
            let want = exact[t as usize];
            let tol = 0.3 * want + 1e-3;
            assert!((est - want).abs() < tol, "target {t}: est {est} want {want}");
        }
    }

    #[test]
    fn deterministic_per_pair() {
        let g = test_graph();
        let bippr = Bippr::new(g, BipprConfig::default());
        assert_eq!(bippr.estimate(1, 7), bippr.estimate(1, 7));
    }

    #[test]
    fn tighter_rmax_tightens_estimates() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 5, &CpiConfig { eps: 1e-12, ..Default::default() });
        let coarse = Bippr::new(
            Arc::clone(&g),
            BipprConfig { rmax: 1e-2, walks: 5_000, ..Default::default() },
        );
        let fine = Bippr::new(
            Arc::clone(&g),
            BipprConfig { rmax: 1e-5, walks: 5_000, ..Default::default() },
        );
        // Aggregate error over a set of targets must not grow with finer rmax.
        let targets: Vec<u32> = (0..40).collect();
        let err = |b: &Bippr| -> f64 {
            targets.iter().map(|&t| (b.estimate(5, t) - exact[t as usize]).abs()).sum()
        };
        assert!(err(&fine) <= err(&coarse) + 0.05);
    }

    #[test]
    fn self_pair_dominated_by_restart() {
        let g = test_graph();
        let bippr = Bippr::new(Arc::clone(&g), BipprConfig::default());
        let est = bippr.estimate(9, 9);
        assert!(est >= 0.15 - 0.02, "π(s,s) = {est} should be ≥ c");
    }
}
