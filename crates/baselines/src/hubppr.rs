//! HubPPR (Wang, Tang, Xiao, Yang & Li, VLDB'16): bidirectional PPR
//! estimation with a precomputed hub index.
//!
//! A single-pair estimate combines a *backward push* from the target with
//! forward random walks from the source:
//! `π(s,t) ≈ p_t(s) + Σ_v π̂(s,v)·r_t(v)` where `p_t`/`r_t` are the
//! backward reserve/residual and `π̂` is the empirical walk-endpoint
//! distribution. HubPPR precomputes backward states for high-degree *hubs*.
//! A full-vector query (what the paper benchmarks — "by querying all nodes
//! in a graph as the target nodes") loops over every target, which is why
//! HubPPR's online time trails TPA's by up to 30× in Fig. 1(c).

use crate::{MemoryBudget, PreprocessError, RwrMethod};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// HubPPR parameters.
#[derive(Clone, Copy, Debug)]
pub struct HubPprConfig {
    /// Restart probability.
    pub c: f64,
    /// Backward-push residual threshold (per-pair additive error bound).
    pub rmax_backward: f64,
    /// Forward walks per query.
    pub walks: usize,
    /// Fraction of nodes (highest degree) indexed as hubs.
    pub hub_fraction: f64,
    /// RNG seed.
    pub rng_seed: u64,
}

impl Default for HubPprConfig {
    fn default() -> Self {
        Self { c: 0.15, rmax_backward: 1e-3, walks: 10_000, hub_fraction: 0.02, rng_seed: 0x4b }
    }
}

/// Sparse backward-push state stored for a hub target.
struct HubEntry {
    target: NodeId,
    /// `(node, reserve)` pairs, sorted by node.
    reserve: Vec<(NodeId, f64)>,
    /// `(node, residual)` pairs, sorted by node.
    residual: Vec<(NodeId, f64)>,
}

/// The HubPPR method.
pub struct HubPpr {
    graph: Arc<CsrGraph>,
    cfg: HubPprConfig,
    /// `hub_slot[v]` = index into `hubs` if `v` is an indexed hub.
    hub_slot: Vec<Option<u32>>,
    hubs: Vec<HubEntry>,
    rng: Mutex<StdRng>,
}

impl HubPpr {
    /// Preprocessing: backward-push states for the top-degree hubs. Never
    /// fails on the budget — the hub index simply stops growing at the cap
    /// (the `Result` is kept for interface symmetry).
    pub fn preprocess(
        graph: Arc<CsrGraph>,
        cfg: HubPprConfig,
        budget: MemoryBudget,
    ) -> Result<Self, PreprocessError> {
        let n = graph.n();
        let hub_count = ((n as f64 * cfg.hub_fraction) as usize).min(n);
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.in_degree(v) + graph.out_degree(v)));

        let mut scratch = BackwardScratch::new(n);
        let mut hubs = Vec::with_capacity(hub_count);
        let mut hub_slot = vec![None; n];
        let mut bytes = 0usize;
        for &t in by_degree.iter().take(hub_count) {
            let (reserve, residual) = scratch.push(&graph, t, cfg.c, cfg.rmax_backward);
            bytes += (reserve.len() + residual.len()) * 12 + 16;
            // HubPPR sizes its index *to* the available memory (the paper
            // notes it "trades off the online computation time against the
            // size of preprocessed data"): stop indexing hubs at the budget
            // instead of failing.
            if budget.check("HubPPR", bytes).is_err() {
                break;
            }
            hub_slot[t as usize] = Some(hubs.len() as u32);
            hubs.push(HubEntry { target: t, reserve, residual });
        }
        Ok(Self {
            graph,
            cfg,
            hub_slot,
            hubs,
            rng: Mutex::new(StdRng::seed_from_u64(cfg.rng_seed)),
        })
    }

    /// Empirical endpoint distribution of `walks` forward walks from `seed`.
    fn forward_counts<R: Rng + ?Sized>(&self, seed: NodeId, rng: &mut R) -> Vec<u32> {
        let mut counts = vec![0u32; self.graph.n()];
        for _ in 0..self.cfg.walks {
            let mut v = seed;
            loop {
                if rng.gen::<f64>() < self.cfg.c {
                    break;
                }
                let neigh = self.graph.out_neighbors(v);
                if neigh.is_empty() {
                    break;
                }
                v = neigh[rng.gen_range(0..neigh.len())];
            }
            counts[v as usize] += 1;
        }
        counts
    }

    fn combine(
        seed: NodeId,
        counts: &[u32],
        walks: f64,
        reserve: &[(NodeId, f64)],
        residual: &[(NodeId, f64)],
    ) -> f64 {
        let mut score = match reserve.binary_search_by_key(&seed, |&(v, _)| v) {
            Ok(i) => reserve[i].1,
            Err(_) => 0.0,
        };
        for &(v, r) in residual {
            let cnt = counts[v as usize];
            if cnt > 0 {
                score += r * cnt as f64 / walks;
            }
        }
        score
    }
}

impl RwrMethod for HubPpr {
    fn name(&self) -> &'static str {
        "HubPPR"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let n = self.graph.n();
        let mut rng = self.rng.lock();
        *rng = StdRng::seed_from_u64(self.cfg.rng_seed ^ ((seed as u64) << 16));
        let counts = self.forward_counts(seed, &mut *rng);
        drop(rng);
        let walks = self.cfg.walks as f64;

        let mut scores = vec![0.0f64; n];
        let mut scratch = BackwardScratch::new(n);
        for t in 0..n as NodeId {
            let score = if let Some(slot) = self.hub_slot[t as usize] {
                let e = &self.hubs[slot as usize];
                debug_assert_eq!(e.target, t);
                Self::combine(seed, &counts, walks, &e.reserve, &e.residual)
            } else {
                let (reserve, residual) =
                    scratch.push(&self.graph, t, self.cfg.c, self.cfg.rmax_backward);
                Self::combine(seed, &counts, walks, &reserve, &residual)
            };
            scores[t as usize] = score;
        }
        scores
    }

    fn index_bytes(&self) -> usize {
        self.hubs.iter().map(|h| (h.reserve.len() + h.residual.len()) * 12 + 16).sum()
    }
}

/// Reusable dense buffers for backward pushes (reset via touched lists so a
/// full-vector query does not pay `O(n)` per target).
struct BackwardScratch {
    reserve: Vec<f64>,
    residual: Vec<f64>,
    touched: Vec<NodeId>,
    queue: std::collections::VecDeque<NodeId>,
    in_queue: Vec<bool>,
}

/// Sparse `(reserve, residual)` pair produced by a backward push.
type PushPair = (Vec<(NodeId, f64)>, Vec<(NodeId, f64)>);

impl BackwardScratch {
    fn new(n: usize) -> Self {
        Self {
            reserve: vec![0.0; n],
            residual: vec![0.0; n],
            touched: Vec::new(),
            queue: std::collections::VecDeque::new(),
            in_queue: vec![false; n],
        }
    }

    /// Backward push from `target`; returns sparse (reserve, residual).
    fn push(&mut self, graph: &CsrGraph, target: NodeId, c: f64, rmax: f64) -> PushPair {
        // Reset previous state.
        for &v in &self.touched {
            self.reserve[v as usize] = 0.0;
            self.residual[v as usize] = 0.0;
        }
        self.touched.clear();
        self.queue.clear();

        self.residual[target as usize] = 1.0;
        self.touched.push(target);
        self.queue.push_back(target);
        self.in_queue[target as usize] = true;

        while let Some(v) = self.queue.pop_front() {
            self.in_queue[v as usize] = false;
            let r = self.residual[v as usize];
            if r <= rmax {
                continue;
            }
            self.residual[v as usize] = 0.0;
            self.reserve[v as usize] += c * r;
            // Backward step: mass flows to in-neighbors u, scaled by u's
            // out-degree (π(u,t) ≥ (1−c)/d(u)·π(v,t) for u→v).
            for &u in graph.in_neighbors(v) {
                let du = graph.out_degree(u).max(1);
                let before = self.residual[u as usize];
                if before == 0.0 && self.reserve[u as usize] == 0.0 {
                    self.touched.push(u);
                }
                self.residual[u as usize] = before + (1.0 - c) * r / du as f64;
                if !self.in_queue[u as usize] && self.residual[u as usize] > rmax {
                    self.in_queue[u as usize] = true;
                    self.queue.push_back(u);
                }
            }
        }

        let mut reserve: Vec<(NodeId, f64)> = Vec::new();
        let mut residual: Vec<(NodeId, f64)> = Vec::new();
        self.touched.sort_unstable();
        self.touched.dedup();
        for &v in &self.touched {
            if self.reserve[v as usize] > 0.0 {
                reserve.push((v, self.reserve[v as usize]));
            }
            if self.residual[v as usize] > 0.0 {
                residual.push((v, self.residual[v as usize]));
            }
        }
        (reserve, residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        Arc::new(lfr_lite(LfrConfig { n: 200, m: 1600, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn close_to_exact() {
        let g = test_graph();
        let hub = HubPpr::preprocess(
            Arc::clone(&g),
            HubPprConfig { rmax_backward: 1e-4, walks: 40_000, ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        let exact = tpa_core::exact_rwr(&g, 3, &CpiConfig::default());
        let est = hub.query(3);
        let err = l1_dist(&est, &exact);
        assert!(err < 0.12, "err {err}");
    }

    #[test]
    fn backward_push_invariant() {
        // For every (s, t): exact π(s,t) = p_t(s) + Σ_v π(s,v)·r_t(v).
        let g = test_graph();
        let mut scratch = BackwardScratch::new(g.n());
        let (reserve, residual) = scratch.push(&g, 7, 0.15, 1e-4);
        let cfg = CpiConfig { eps: 1e-12, ..Default::default() };
        for s in [0u32, 10, 100] {
            let pi_s = tpa_core::exact_rwr(&g, s, &cfg);
            let mut est = match reserve.binary_search_by_key(&s, |&(v, _)| v) {
                Ok(i) => reserve[i].1,
                Err(_) => 0.0,
            };
            for &(v, r) in &residual {
                est += pi_s[v as usize] * r;
            }
            assert!((est - pi_s[7]).abs() < 1e-9, "seed {s}: {est} vs {}", pi_s[7]);
        }
    }

    #[test]
    fn hub_index_reused_and_counted() {
        let g = test_graph();
        let hub = HubPpr::preprocess(
            Arc::clone(&g),
            HubPprConfig { hub_fraction: 0.1, ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        assert!(hub.index_bytes() > 0);
        assert_eq!(hub.hubs.len(), g.n() / 10);
    }

    #[test]
    fn no_hubs_means_empty_index() {
        let g = test_graph();
        let hub = HubPpr::preprocess(
            Arc::clone(&g),
            HubPprConfig { hub_fraction: 0.0, ..Default::default() },
            MemoryBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(hub.index_bytes(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = test_graph();
        let hub =
            HubPpr::preprocess(g, HubPprConfig::default(), MemoryBudget::unlimited()).unwrap();
        assert_eq!(hub.query(5), hub.query(5));
    }
}
