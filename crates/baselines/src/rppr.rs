//! RPPR — Restricted Personalized PageRank (Gleich & Polito 2006, the
//! simpler sibling of BRPPR the paper's §IV-A also tunes with the 1e-4
//! expansion threshold).
//!
//! RPPR expands the active set *during* the power iteration: any node
//! whose current rank exceeds the threshold is activated immediately, and
//! the iteration continues until convergence on the active subgraph. It
//! lacks BRPPR's boundary-mass stopping rule, so it is simpler but less
//! adaptive — a useful ablation point between plain power iteration and
//! BRPPR.

use crate::RwrMethod;
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// RPPR parameters.
#[derive(Clone, Copy, Debug)]
pub struct RpprConfig {
    /// Restart probability.
    pub c: f64,
    /// Rank threshold for activating a node (paper setting: 1e-4).
    pub expand_threshold: f64,
    /// Convergence tolerance on the moved mass.
    pub eps: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for RpprConfig {
    fn default() -> Self {
        Self { c: 0.15, expand_threshold: 1e-4, eps: 1e-7, max_iters: 500 }
    }
}

/// The RPPR method (online-only).
pub struct Rppr {
    graph: Arc<CsrGraph>,
    cfg: RpprConfig,
}

impl Rppr {
    /// Creates the method.
    pub fn new(graph: Arc<CsrGraph>, cfg: RpprConfig) -> Self {
        Self { graph, cfg }
    }
}

impl RwrMethod for Rppr {
    fn name(&self) -> &'static str {
        "RPPR"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let n = self.graph.n();
        let c = self.cfg.c;
        let mut active = vec![false; n];
        active[seed as usize] = true;

        let mut x = vec![0.0f64; n];
        x[seed as usize] = c;
        let mut next = vec![0.0f64; n];
        let mut scores = vec![0.0f64; n];
        scores[seed as usize] = c;

        for _ in 0..self.cfg.max_iters {
            next.iter_mut().for_each(|v| *v = 0.0);
            let mut moved = 0.0;
            for u in 0..n as NodeId {
                let xu = x[u as usize];
                if xu == 0.0 || !active[u as usize] {
                    continue;
                }
                let neigh = self.graph.out_neighbors(u);
                if neigh.is_empty() {
                    continue;
                }
                let share = (1.0 - c) * xu / neigh.len() as f64;
                for &w in neigh {
                    next[w as usize] += share;
                }
                moved += (1.0 - c) * xu;
            }
            std::mem::swap(&mut x, &mut next);
            // Activate nodes immediately once their accumulated rank passes
            // the threshold (the defining difference vs BRPPR's phased
            // expansion).
            for v in 0..n {
                scores[v] += x[v];
                if !active[v] && scores[v] > self.cfg.expand_threshold {
                    active[v] = true;
                }
                if !active[v] {
                    x[v] = 0.0; // frozen boundary mass
                }
            }
            if moved < self.cfg.eps {
                break;
            }
        }
        scores
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::{lfr_lite, LfrConfig};

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    fn test_graph() -> Arc<CsrGraph> {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        Arc::new(lfr_lite(LfrConfig { n: 300, m: 2400, ..Default::default() }, &mut rng).graph)
    }

    #[test]
    fn close_to_exact() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 5, &CpiConfig::default());
        let rppr = Rppr::new(Arc::clone(&g), RpprConfig::default());
        let err = l1_dist(&rppr.query(5), &exact);
        assert!(err < 0.1, "err {err}");
    }

    #[test]
    fn lower_threshold_is_more_accurate() {
        let g = test_graph();
        let exact = tpa_core::exact_rwr(&g, 8, &CpiConfig::default());
        let coarse =
            Rppr::new(Arc::clone(&g), RpprConfig { expand_threshold: 1e-2, ..Default::default() })
                .query(8);
        let fine =
            Rppr::new(Arc::clone(&g), RpprConfig { expand_threshold: 1e-6, ..Default::default() })
                .query(8);
        assert!(l1_dist(&fine, &exact) <= l1_dist(&coarse, &exact) + 1e-12);
    }

    #[test]
    fn mass_at_most_one() {
        let g = test_graph();
        let rppr = Rppr::new(g, RpprConfig::default());
        let r = rppr.query(0);
        let total: f64 = r.iter().sum();
        assert!(total <= 1.0 + 1e-9 && total > 0.5, "total {total}");
    }
}
