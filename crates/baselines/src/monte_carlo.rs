//! Monte Carlo RWR: simulate restart-terminated random walks and use the
//! empirical endpoint distribution as the score estimate.
//!
//! The walk position at termination (termination probability `c` per step)
//! is distributed exactly as the RWR vector, so the estimator is unbiased
//! with variance `O(1/W)` per entry.

use crate::RwrMethod;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tpa_graph::{CsrGraph, NodeId};

/// Monte Carlo configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloConfig {
    /// Restart probability.
    pub c: f64,
    /// Number of walks per query.
    pub walks: usize,
    /// RNG seed (each query reseeds deterministically from this and the
    /// seed node, so repeated queries are reproducible).
    pub rng_seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self { c: 0.15, walks: 100_000, rng_seed: 0x7ea_5eed }
    }
}

/// Monte Carlo RWR method.
pub struct MonteCarlo {
    graph: Arc<CsrGraph>,
    cfg: MonteCarloConfig,
    /// Cached per-query RNG, reseeded per query for determinism.
    rng: Mutex<StdRng>,
}

impl MonteCarlo {
    /// Creates the method.
    pub fn new(graph: Arc<CsrGraph>, cfg: MonteCarloConfig) -> Self {
        assert!(cfg.c > 0.0 && cfg.c < 1.0);
        assert!(cfg.walks > 0);
        let rng = Mutex::new(StdRng::seed_from_u64(cfg.rng_seed));
        Self { graph, cfg, rng }
    }

    /// One restart-terminated walk from `start`; returns the endpoint.
    /// A walk stranded on a dangling node terminates there (consistent
    /// with the `Keep` dangling policy; the default builder policy adds
    /// self-loops so this rarely triggers).
    fn walk<R: Rng + ?Sized>(&self, start: NodeId, rng: &mut R) -> NodeId {
        let mut v = start;
        loop {
            if rng.gen::<f64>() < self.cfg.c {
                return v;
            }
            let neigh = self.graph.out_neighbors(v);
            if neigh.is_empty() {
                return v;
            }
            v = neigh[rng.gen_range(0..neigh.len())];
        }
    }
}

impl RwrMethod for MonteCarlo {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let mut rng = self.rng.lock();
        // Derive a per-(method-seed, query-seed) stream: deterministic and
        // independent across seeds.
        *rng = StdRng::seed_from_u64(self.cfg.rng_seed ^ ((seed as u64) << 20));
        let mut counts = vec![0u32; self.graph.n()];
        for _ in 0..self.cfg.walks {
            let end = self.walk(seed, &mut *rng);
            counts[end as usize] += 1;
        }
        let w = self.cfg.walks as f64;
        counts.into_iter().map(|k| k as f64 / w).collect()
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_core::CpiConfig;
    use tpa_graph::gen::star_graph;

    fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn estimates_sum_to_one() {
        let g = Arc::new(star_graph(10));
        let mc = MonteCarlo::new(g, MonteCarloConfig { walks: 5000, ..Default::default() });
        let r = mc.query(0);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_exact_with_many_walks() {
        let g = Arc::new(star_graph(8));
        let exact = tpa_core::exact_rwr(&g, 2, &CpiConfig::default());
        let mc = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig { walks: 400_000, ..Default::default() },
        );
        let est = mc.query(2);
        assert!(l1_dist(&est, &exact) < 0.01, "err {}", l1_dist(&est, &exact));
    }

    #[test]
    fn deterministic_per_query() {
        let g = Arc::new(star_graph(8));
        let mc = MonteCarlo::new(g, MonteCarloConfig { walks: 1000, ..Default::default() });
        assert_eq!(mc.query(1), mc.query(1));
    }

    #[test]
    fn more_walks_reduce_error() {
        let g = Arc::new(star_graph(12));
        let exact = tpa_core::exact_rwr(&g, 0, &CpiConfig::default());
        let coarse =
            MonteCarlo::new(Arc::clone(&g), MonteCarloConfig { walks: 500, ..Default::default() })
                .query(0);
        let fine = MonteCarlo::new(
            Arc::clone(&g),
            MonteCarloConfig { walks: 200_000, ..Default::default() },
        )
        .query(0);
        assert!(l1_dist(&fine, &exact) < l1_dist(&coarse, &exact));
    }
}
