//! Exact power iteration (CPI to convergence) as an online-only method —
//! the no-preprocessing reference point and the harness's ground truth.

use crate::RwrMethod;
use std::sync::Arc;
use tpa_core::{cpi, CpiConfig, SeedSet, Transition};
use tpa_graph::{CsrGraph, NodeId};

/// Exact RWR by running CPI to convergence at query time. `O(m·log(ε/c))`
/// per query, zero preprocessed bytes.
pub struct PowerIteration {
    graph: Arc<CsrGraph>,
    cfg: CpiConfig,
}

impl PowerIteration {
    /// Binds the method to a graph.
    pub fn new(graph: Arc<CsrGraph>, cfg: CpiConfig) -> Self {
        cfg.validate();
        Self { graph, cfg }
    }
}

impl RwrMethod for PowerIteration {
    fn name(&self) -> &'static str {
        "PowerIteration"
    }

    fn query(&self, seed: NodeId) -> Vec<f64> {
        let t = Transition::new(&self.graph);
        cpi(&t, &SeedSet::single(seed), &self.cfg, 0, None).scores
    }

    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpa_graph::gen::star_graph;

    #[test]
    fn matches_exact_rwr() {
        let g = Arc::new(star_graph(20));
        let m = PowerIteration::new(Arc::clone(&g), CpiConfig::default());
        let got = m.query(3);
        let want = tpa_core::exact_rwr(&g, 3, &CpiConfig::default());
        assert_eq!(got, want);
        assert_eq!(m.index_bytes(), 0);
    }
}
