//! Criterion version of Fig. 1(b): preprocessing cost of the indexing
//! methods on a 10×-scaled Slashdot analog (small enough that even the
//! slow preprocessors finish within criterion's sampling budget).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tpa_baselines::{
    BePi, BePiConfig, ForaConfig, ForaIndex, HubPpr, HubPprConfig, MemoryBudget, NbLin,
    NbLinConfig, RwrMethod, Tpa,
};
use tpa_core::TpaParams;

fn preprocessing(c: &mut Criterion) {
    let spec = tpa_datasets::spec("slashdot-s").unwrap().scaled_down(10);
    let d = tpa_datasets::generate(&spec);
    let g = Arc::clone(&d.graph);
    let unlimited = MemoryBudget::unlimited();

    let mut group = c.benchmark_group("preprocess/slashdot-s@10pct");
    group.sample_size(10);
    group.bench_function("TPA", |b| {
        b.iter(|| {
            black_box(
                Tpa::preprocess(Arc::clone(&g), TpaParams::new(spec.s, spec.t), unlimited)
                    .unwrap()
                    .index_bytes(),
            )
        })
    });
    group.bench_function("FORA(indexed)", |b| {
        b.iter(|| {
            black_box(
                ForaIndex::preprocess(Arc::clone(&g), ForaConfig::default(), unlimited)
                    .unwrap()
                    .index_bytes(),
            )
        })
    });
    group.bench_function("HubPPR", |b| {
        b.iter(|| {
            black_box(
                HubPpr::preprocess(Arc::clone(&g), HubPprConfig::default(), unlimited)
                    .unwrap()
                    .index_bytes(),
            )
        })
    });
    group.bench_function("NB_LIN", |b| {
        b.iter(|| {
            black_box(
                NbLin::preprocess(
                    Arc::clone(&g),
                    NbLinConfig { rank: 32, ..Default::default() },
                    unlimited,
                )
                .unwrap()
                .index_bytes(),
            )
        })
    });
    group.bench_function("BePI", |b| {
        b.iter(|| {
            black_box(
                BePi::preprocess(Arc::clone(&g), BePiConfig::default(), unlimited)
                    .unwrap()
                    .index_bytes(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, preprocessing);
criterion_main!(benches);
