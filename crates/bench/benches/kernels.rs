//! Micro-benchmarks of the computational kernels every method is built
//! from: the CPI propagation step (gather), the forward-push operation,
//! random-walk simulation. Also ablates the gather-vs-scatter design
//! choice called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tpa_baselines::forward_push;
use tpa_core::Transition;
use tpa_graph::{CsrGraph, NodeId};

fn bench_graph() -> CsrGraph {
    let spec = tpa_datasets::spec("slashdot-s").unwrap();
    (*tpa_datasets::generate(spec).graph).clone()
}

/// Scatter-based propagation (the alternative the gather kernel replaced).
fn propagate_scatter(g: &CsrGraph, inv_out: &[f64], coeff: f64, x: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|v| *v = 0.0);
    for u in 0..g.n() as NodeId {
        let share = coeff * x[u as usize] * inv_out[u as usize];
        if share == 0.0 {
            continue;
        }
        for &v in g.out_neighbors(u) {
            y[v as usize] += share;
        }
    }
}

fn kernels(c: &mut Criterion) {
    let g = bench_graph();
    let n = g.n();
    let t = Transition::new(&g);
    let inv_out = g.inv_out_degrees();
    let mut rng = StdRng::seed_from_u64(1);
    let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() / n as f64).collect();
    let mut y = vec![0.0f64; n];

    let mut group = c.benchmark_group("propagate");
    group.throughput(Throughput::Elements(g.m() as u64));
    group.bench_function("gather_in_edges", |b| {
        b.iter(|| t.propagate_into(0.85, black_box(&x), black_box(&mut y)))
    });
    group.bench_function("scatter_out_edges", |b| {
        b.iter(|| propagate_scatter(&g, &inv_out, 0.85, black_box(&x), black_box(&mut y)))
    });
    for threads in [2usize, 4] {
        use tpa_core::Propagator;
        let par = tpa_core::ParallelTransition::new(&g, threads);
        group.bench_function(format!("gather_parallel_{threads}t"), |b| {
            b.iter(|| par.propagate_into(0.85, black_box(&x), black_box(&mut y)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("forward_push");
    for rmax in [1e-4, 1e-5] {
        group.bench_with_input(BenchmarkId::from_parameter(rmax), &rmax, |b, &rmax| {
            b.iter(|| forward_push(black_box(&g), 7, 0.15, rmax))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("random_walks");
    group.bench_function("1000_walks", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                let mut v: NodeId = 7;
                loop {
                    if rng.gen::<f64>() < 0.15 {
                        break;
                    }
                    let neigh = g.out_neighbors(v);
                    if neigh.is_empty() {
                        break;
                    }
                    v = neigh[rng.gen_range(0..neigh.len())];
                }
                acc += v as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = kernels
}
criterion_main!(benches);
