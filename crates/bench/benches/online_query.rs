//! Criterion version of Fig. 1(c): online query latency of TPA against
//! the competitors, on the Slashdot analog (the dataset every method can
//! preprocess). Statistical rigor (warmup, outlier rejection) complements
//! the wall-clock sweep in `fig1_performance`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use tpa_baselines::{
    Brppr, BrpprConfig, Fora, ForaConfig, ForaIndex, MemoryBudget, NbLin, NbLinConfig,
    PowerIteration, RwrMethod, Tpa,
};
use tpa_core::{CpiConfig, TpaParams};

fn online_query(c: &mut Criterion) {
    let spec = tpa_datasets::spec("slashdot-s").unwrap();
    let d = tpa_datasets::generate(spec);
    let g = Arc::clone(&d.graph);

    let methods: Vec<Box<dyn RwrMethod>> = vec![
        Box::new(
            Tpa::preprocess(
                Arc::clone(&g),
                TpaParams::new(spec.s, spec.t),
                MemoryBudget::unlimited(),
            )
            .unwrap(),
        ),
        Box::new(PowerIteration::new(Arc::clone(&g), CpiConfig::default())),
        Box::new(Fora::new(Arc::clone(&g), ForaConfig::default())),
        Box::new(
            ForaIndex::preprocess(Arc::clone(&g), ForaConfig::default(), MemoryBudget::unlimited())
                .unwrap(),
        ),
        Box::new(Brppr::new(Arc::clone(&g), BrpprConfig::default())),
        Box::new(
            NbLin::preprocess(
                Arc::clone(&g),
                NbLinConfig { rank: 64, ..Default::default() },
                MemoryBudget::unlimited(),
            )
            .unwrap(),
        ),
    ];

    let mut group = c.benchmark_group("online_query/slashdot-s");
    group.sample_size(10);
    for (i, m) in methods.iter().enumerate() {
        // Disambiguate FORA vs FORA+ (same paper label).
        let name = match i {
            2 => "FORA(no-index)".to_string(),
            3 => "FORA(indexed)".to_string(),
            _ => m.name().to_string(),
        };
        group.bench_function(&name, |b| b.iter(|| black_box(m.query(42))));
    }
    group.finish();
}

criterion_group!(benches, online_query);
criterion_main!(benches);
