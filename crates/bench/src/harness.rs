//! Shared wiring for the per-figure experiment binaries: dataset loading,
//! method construction with per-dataset parameters, the memory budget, and
//! environment knobs.
//!
//! Environment variables:
//! * `TPA_QUICK=1` — scale every dataset down 10× and use 5 query seeds
//!   (fast smoke runs; the full run uses the paper's 30 seeds).
//! * `TPA_SEEDS=<k>` — override the query-seed count.
//! * `TPA_BUDGET_MB=<mb>` — override the preprocessing memory budget.
//! * `TPA_RESULTS_DIR=<dir>` — where CSV artifacts go (default `results/`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tpa_baselines::{
    BePi, BePiConfig, BearApprox, BearConfig, Brppr, BrpprConfig, Fora, ForaConfig, ForaIndex,
    ForwardPush, HubPpr, HubPprConfig, MemoryBudget, MonteCarlo, MonteCarloConfig, NbLin,
    NbLinConfig, PowerIteration, PreprocessError, RwrMethod, Tpa,
};
use tpa_core::{CpiConfig, TpaParams};
use tpa_datasets::Dataset;
use tpa_eval::time;

/// The paper's workstation memory cap (200 GB).
pub const PAPER_BUDGET_BYTES: usize = 200 << 30;

/// Preprocessing budget for one dataset: the paper's 200 GB cap scaled by
/// the same factor the dataset itself was scaled by
/// (`200 GB · nodes / original_nodes`), so "fits on the paper's machine"
/// translates faithfully to the analog. `TPA_BUDGET_MB` overrides with an
/// absolute cap.
pub fn budget_for(d: &Dataset) -> MemoryBudget {
    if let Some(mb) = std::env::var("TPA_BUDGET_MB").ok().and_then(|v| v.parse::<usize>().ok()) {
        return MemoryBudget::bytes(mb << 20);
    }
    let scaled =
        (PAPER_BUDGET_BYTES as f64 * d.spec.nodes as f64 / d.spec.original_nodes as f64) as usize;
    MemoryBudget::bytes(scaled)
}

/// True when `TPA_QUICK=1`.
pub fn quick() -> bool {
    std::env::var("TPA_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Query seeds per dataset (paper: 30).
pub fn seed_count() -> usize {
    if let Some(k) = std::env::var("TPA_SEEDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        return k;
    }
    if quick() {
        5
    } else {
        tpa_eval::seeds::PAPER_SEED_COUNT
    }
}

/// Results directory.
pub fn results_dir() -> PathBuf {
    std::env::var("TPA_RESULTS_DIR").map(PathBuf::from).unwrap_or_else(|_| PathBuf::from("results"))
}

/// Loads a dataset, honoring quick mode.
pub fn load_dataset(key: &str) -> Dataset {
    let spec = tpa_datasets::spec(key).unwrap_or_else(|| panic!("unknown dataset {key}"));
    if quick() {
        tpa_datasets::generate(&spec.scaled_down(10))
    } else {
        tpa_datasets::load(key)
    }
}

/// Keys of all seven datasets in paper order.
pub fn all_dataset_keys() -> Vec<&'static str> {
    tpa_datasets::DATASETS.iter().map(|d| d.key).collect()
}

/// The methods of Fig. 1/7 in the paper's legend order.
pub const FIG1_METHODS: [MethodKind; 6] = [
    MethodKind::Tpa,
    MethodKind::Brppr,
    MethodKind::ForaPlus,
    MethodKind::HubPpr,
    MethodKind::BearApprox,
    MethodKind::NbLin,
];

/// Identifier for each runnable method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// TPA (the proposed method).
    Tpa,
    /// BRPPR (online-only).
    Brppr,
    /// FORA+ with its precomputed walk index.
    ForaPlus,
    /// FORA without the index.
    Fora,
    /// HubPPR with its hub index.
    HubPpr,
    /// BEAR-APPROX.
    BearApprox,
    /// NB-LIN.
    NbLin,
    /// BePI (exact; Fig. 10).
    BePi,
    /// Exact power iteration.
    PowerIteration,
    /// Plain Monte Carlo.
    MonteCarlo,
    /// Plain Forward Push.
    ForwardPush,
}

impl MethodKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Tpa => "TPA",
            MethodKind::Brppr => "BRPPR",
            MethodKind::ForaPlus | MethodKind::Fora => "FORA",
            MethodKind::HubPpr => "HubPPR",
            MethodKind::BearApprox => "BEAR_APPROX",
            MethodKind::NbLin => "NB_LIN",
            MethodKind::BePi => "BePI",
            MethodKind::PowerIteration => "PowerIteration",
            MethodKind::MonteCarlo => "MonteCarlo",
            MethodKind::ForwardPush => "ForwardPush",
        }
    }
}

/// Outcome of constructing (≈ preprocessing) a method on a dataset.
pub struct BuildOutcome {
    /// Display label.
    pub label: &'static str,
    /// The ready-to-query method, unless preprocessing failed.
    pub method: Option<Box<dyn RwrMethod>>,
    /// Preprocessing wall-clock (None for online-only methods: their
    /// "preprocessing" is a no-op and excluded from Fig. 1(a)/(b)).
    pub preprocess: Option<Duration>,
    /// Why preprocessing failed, if it did (OOM reproduces the paper's
    /// omitted bars).
    pub error: Option<PreprocessError>,
}

/// Builds a method on a dataset with the paper's per-dataset parameters.
pub fn build_method(kind: MethodKind, d: &Dataset, budget: MemoryBudget) -> BuildOutcome {
    let g = Arc::clone(&d.graph);
    let label = kind.label();
    match kind {
        MethodKind::Tpa => {
            let params = TpaParams::new(d.spec.s, d.spec.t);
            let (res, dt) = time(|| Tpa::preprocess(g, params, budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::Brppr => BuildOutcome {
            label,
            method: Some(Box::new(Brppr::new(g, BrpprConfig::default()))),
            preprocess: None,
            error: None,
        },
        MethodKind::Fora => BuildOutcome {
            label,
            method: Some(Box::new(Fora::new(g, ForaConfig::default()))),
            preprocess: None,
            error: None,
        },
        MethodKind::ForaPlus => {
            let (res, dt) = time(|| ForaIndex::preprocess(g, ForaConfig::default(), budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::HubPpr => {
            let (res, dt) = time(|| HubPpr::preprocess(g, HubPprConfig::default(), budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::BearApprox => {
            let (res, dt) = time(|| BearApprox::preprocess(g, BearConfig::default(), budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::NbLin => {
            // NB-LIN needs rank growing with graph size for usable accuracy
            // (it must span the community space); this is what drives its
            // O(n·t) index out of memory on the large graphs in Fig. 1(a).
            let rank = (d.graph.n() / 64).max(64);
            let cfg = NbLinConfig { rank, ..Default::default() };
            let (res, dt) = time(|| NbLin::preprocess(g, cfg, budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::BePi => {
            let (res, dt) = time(|| BePi::preprocess(g, BePiConfig::default(), budget));
            wrap(label, res.map(boxed), Some(dt))
        }
        MethodKind::PowerIteration => BuildOutcome {
            label,
            method: Some(Box::new(PowerIteration::new(g, CpiConfig::default()))),
            preprocess: None,
            error: None,
        },
        MethodKind::MonteCarlo => BuildOutcome {
            label,
            method: Some(Box::new(MonteCarlo::new(g, MonteCarloConfig::default()))),
            preprocess: None,
            error: None,
        },
        MethodKind::ForwardPush => BuildOutcome {
            label,
            method: Some(Box::new(ForwardPush::new(g, 0.15, 1e-6))),
            preprocess: None,
            error: None,
        },
    }
}

fn boxed<M: RwrMethod + 'static>(m: M) -> Box<dyn RwrMethod> {
    Box::new(m)
}

fn wrap(
    label: &'static str,
    res: Result<Box<dyn RwrMethod>, PreprocessError>,
    preprocess: Option<Duration>,
) -> BuildOutcome {
    match res {
        Ok(m) => BuildOutcome { label, method: Some(m), preprocess, error: None },
        Err(e) => BuildOutcome { label, method: None, preprocess: None, error: Some(e) },
    }
}

/// Exact ground-truth RWR used to score every method (CPI to ε = 1e-9,
/// equivalent to the paper's use of BePI as ground truth).
pub fn ground_truth(d: &Dataset, seed: u32) -> Vec<f64> {
    tpa_core::exact_rwr(&d.graph, seed, &CpiConfig::default())
}

/// Sampled query seeds for a dataset (paper: 30 random seeds).
pub fn query_seeds(d: &Dataset) -> Vec<u32> {
    tpa_eval::seeds::sample_seeds(d.graph.n(), seed_count(), 0xbead ^ d.spec.seed)
}

/// Formats an `Option<Duration>` in seconds for table cells.
pub fn fmt_opt_secs(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.4}", d.as_secs_f64()),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fig1_methods_build_on_tiny_dataset() {
        let spec = tpa_datasets::spec("slashdot-s").unwrap();
        let d = tpa_datasets::generate(&spec.scaled_down(20));
        for kind in FIG1_METHODS {
            let out = build_method(kind, &d, MemoryBudget::unlimited());
            assert!(out.method.is_some(), "{} failed: {:?}", out.label, out.error);
            let m = out.method.unwrap();
            let scores = m.query(0);
            assert_eq!(scores.len(), d.graph.n());
        }
    }

    #[test]
    fn ground_truth_is_normalized() {
        let spec = tpa_datasets::spec("slashdot-s").unwrap();
        let d = tpa_datasets::generate(&spec.scaled_down(20));
        let r = ground_truth(&d, 3);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn query_seeds_deterministic_per_dataset() {
        let spec = tpa_datasets::spec("slashdot-s").unwrap();
        let d = tpa_datasets::generate(&spec.scaled_down(20));
        assert_eq!(query_seeds(&d), query_seeds(&d));
    }
}
