//! # tpa-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index), plus criterion micro-benchmarks. All binaries write both an
//! ASCII table to stdout and a CSV artifact under `results/`.

#![warn(missing_docs)]

pub mod harness;
pub mod report;
