//! Figure 7: recall of the approximate top-k against the exact top-k for
//! k = 100…500, on the paper's four showcased datasets.

use tpa_bench::harness::{
    budget_for, build_method, ground_truth, load_dataset, query_seeds, results_dir, FIG1_METHODS,
};
use tpa_eval::{metrics, Stats, Table};

const KS: [usize; 5] = [100, 200, 300, 400, 500];

fn main() {
    let mut table = Table::new(
        "Fig 7: recall of top-k RWR vertices (avg over seeds; OOM = over budget)",
        &["dataset", "method", "k", "recall"],
    );

    // The paper's four showcased datasets; `TPA_DATASETS=a,b` restricts the
    // run (used for time-boxed partial regeneration).
    let default_keys = ["slashdot-s", "pokec-s", "wikilink-s", "twitter-s"];
    let restricted = std::env::var("TPA_DATASETS").ok();
    let keys: Vec<&str> = match &restricted {
        Some(s) => s.split(',').map(str::trim).collect(),
        None => default_keys.to_vec(),
    };
    for key in keys {
        let d = load_dataset(key);
        eprintln!("[fig7] {key}");
        let budget = budget_for(&d);
        let seeds = query_seeds(&d);
        let truths: Vec<Vec<f64>> = seeds.iter().map(|&s| ground_truth(&d, s)).collect();

        for kind in FIG1_METHODS {
            let built = build_method(kind, &d, budget);
            match built.method {
                None => {
                    for k in KS {
                        table.row(&[key.into(), built.label.into(), k.to_string(), "OOM".into()]);
                    }
                }
                Some(method) => {
                    // One query per seed; recall at every k from the same
                    // score vector. Slow methods are capped at 60 s
                    // cumulative (≥3 seeds) like in fig1_performance.
                    let mut recalls: Vec<Vec<f64>> = vec![Vec::new(); KS.len()];
                    let started = std::time::Instant::now();
                    for (i, &s) in seeds.iter().enumerate() {
                        let approx = method.query(s);
                        for (ki, &k) in KS.iter().enumerate() {
                            recalls[ki].push(metrics::recall_at_k(&truths[i], &approx, k));
                        }
                        if started.elapsed().as_secs() >= 60 && i + 1 >= 3 {
                            eprintln!("[fig7] {key}/{}: capped at {} seeds", built.label, i + 1);
                            break;
                        }
                    }
                    for (ki, &k) in KS.iter().enumerate() {
                        let r = Stats::from_samples(&recalls[ki]).mean;
                        table.row(&[
                            key.into(),
                            built.label.into(),
                            k.to_string(),
                            format!("{r:.4}"),
                        ]);
                    }
                }
            }
        }
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("fig7_recall.csv")).unwrap();
}
