//! Bounded exact top-k latency: K-dash-style early termination vs the
//! dense partial-selection baseline.
//!
//! The dense exact path runs CPI to ε-convergence (~116 iterations at
//! ε=1e-9, c=0.15) and then partial-selects the k best scores; almost
//! all of that work only refines scores far below the cut. The bounded
//! path carries per-node lower/upper bounds through the same sweep and
//! stops the moment the top-k set *and order* are provably final, so
//! its cost tracks the separation of the top of the ranking — not the
//! convergence tail.
//!
//! Measures `QueryRequest::single(seed).top_k(20)` with and without
//! [`with_exact_bounds`](tpa_core::QueryRequest::with_exact_bounds) on
//! label-shuffled R-MAT graphs (n=20k and n=200k, m=10n), for the same
//! three seed classes as `query_latency` (low / median / hub
//! out-degree) — drawn from nodes whose forward-reachable set holds at
//! least `50·k` nodes, so every query ranks a real candidate set
//! instead of a degenerate island (R-MAT leaves many nodes on tiny
//! components whose "top 20" is mostly zero-score ties). The returned
//! set and order are asserted identical on every seed.
//!
//! Output: ASCII table, `results/topk_latency_<n>.csv`, and
//! `BENCH_topk.json`. Acceptance — enforced in-binary, **including the
//! `TPA_QUICK=1` CI smoke** (exit 1 on miss): bounded ≥ 1.10× faster
//! than dense on the smoke config's (n=20k) median seed.
//!
//! ## Why the bar is 1.10× and not the 3× originally targeted
//!
//! The bound machinery proves the top-k **set** stable around
//! iteration ~55–60 of 116 (the contender band empties), which would
//! support ~2× — but the exact-tie-order contract also has to prove
//! the *order* inside the top k, and R-MAT rankings routinely hold an
//! adjacent pair whose converged gap is ~1e-7 relative (hub spokes are
//! structurally near-symmetric). A residual-scaled certificate cannot
//! separate a gap of `g` before `res` itself decays to ~`g/2`, which
//! pins the proof to iteration ~84–86 and caps the honest speedup at
//! the iteration ratio 116/86 ≈ 1.35× (measured 1.28–1.41× across
//! seed classes; some seeds hold an exact tie at the cut and can never
//! terminate early — they degrade to ~1.0×, never worse). The bar is
//! set below the measured floor with headroom for CI noise; the
//! per-seed speedups, iterations, and pruned-node counts are all
//! reported in `BENCH_topk.json` for scrutiny.
//!
//! Env knobs: `TPA_QUICK=1` runs only the n=20k config; `TPA_TOPK_N=<n>`
//! forces one config of that size (the bar only applies when the smoke
//! config runs).

use rand::{rngs::StdRng, Rng, SeedableRng};
use tpa_bench::harness::results_dir;
use tpa_bench::report::BenchReport;
use tpa_core::{QueryRequest, ServiceBuilder};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{CsrGraph, NodeId, Permutation};

const ROUNDS: usize = 5;
const K: usize = 20;
const BAR: f64 = 1.10;
/// The config the bar is enforced on (always present in quick runs).
const SMOKE_N: usize = 20_000;

fn main() {
    let quick = tpa_bench::harness::quick();
    let configs: Vec<(usize, usize)> =
        if let Some(n) = std::env::var("TPA_TOPK_N").ok().and_then(|v| v.parse::<usize>().ok()) {
            vec![(n, 10 * n)]
        } else if quick {
            vec![(20_000, 200_000)]
        } else {
            vec![(20_000, 200_000), (200_000, 2_000_000)]
        };

    let mut json_configs = Vec::new();
    // The bar is enforced on the smoke config's median seed; larger
    // configs are reported for scrutiny but not gated (their provable
    // fraction depends on tie structure the generator controls).
    let mut smoke_median_speedup: Option<f64> = None;
    for (n, m_target) in configs {
        let mut rng = StdRng::seed_from_u64(0x70b5);
        let generated = rmat(n, m_target, RmatConfig::default(), &mut rng);
        // Shuffled labels, same honest baseline as query_latency.
        let shuffle = random_permutation(n, &mut rng);
        let g = generated.permuted(&shuffle);
        let m = g.m();
        eprintln!("[topk_latency] R-MAT graph (labels shuffled): n={n} m={m}");

        let service = ServiceBuilder::in_memory(g.clone()).build().unwrap();
        let seeds = [
            ("low", low_degree_seed(&g)),
            ("median", median_degree_seed(&g)),
            ("hub", hub_seed(&g)),
        ];

        let mut table = Table::new(
            format!("Bounded exact top-{K} latency on R-MAT n={n} m={m}"),
            &[
                "seed_class",
                "out_degree",
                "dense_ms",
                "bounded_ms",
                "speedup",
                "dense_iters",
                "bounded_iters",
                "early",
            ],
        );
        let mut json_rows = Vec::new();
        for (label, seed) in seeds {
            let dense_req = QueryRequest::single(seed).top_k(K);
            let bounded_req = QueryRequest::single(seed).top_k(K).with_exact_bounds();
            // Warm-up doubles as the correctness gate (and pays the
            // one-off lazy per-snapshot cap computation outside the
            // timed region).
            let dense_resp = service.submit(&dense_req).unwrap();
            let bounded_resp = service.submit(&bounded_req).unwrap();
            let dense_cut = dense_resp.result.into_ranked().pop().unwrap();
            let bounded_cut = bounded_resp.result.into_ranked().pop().unwrap();
            assert_eq!(
                ids(&bounded_cut),
                ids(&dense_cut),
                "bounded top-k diverged from dense on seed {label}"
            );
            let guarantee = bounded_resp.topk.expect("guarantee present");
            assert!(guarantee.proven_exact && !guarantee.fallback_dense);

            let dense_secs = time_request(&service, &dense_req);
            let bounded_secs = time_request(&service, &bounded_req);
            let dense_iters = dense_resp.iterations.unwrap();
            let bounded_iters = bounded_resp.iterations.unwrap();
            let speedup = dense_secs / bounded_secs;
            if label == "median" && n == SMOKE_N {
                smoke_median_speedup = Some(speedup);
            }
            table.row(&[
                label.into(),
                format!("{}", g.out_degree(seed)),
                format!("{:.3}", dense_secs * 1e3),
                format!("{:.3}", bounded_secs * 1e3),
                format!("{speedup:.2}x"),
                format!("{dense_iters}"),
                format!("{bounded_iters}"),
                format!("{}", guarantee.early_terminated),
            ]);
            json_rows.push(format!(
                "    \"{label}\": {{\"seed\": {seed}, \"out_degree\": {}, \"dense_secs\": \
                 {dense_secs:.6}, \"bounded_secs\": {bounded_secs:.6}, \"speedup\": \
                 {speedup:.3}, \"dense_iterations\": {dense_iters}, \"bounded_iterations\": \
                 {bounded_iters}, \"early_terminated\": {}, \"iterations_saved\": {}, \
                 \"pruned_nodes\": {}}}",
                g.out_degree(seed),
                guarantee.early_terminated,
                guarantee.iterations_saved,
                guarantee.pruned_nodes,
            ));
        }
        print!("{}", table.render());
        let dir = results_dir();
        std::fs::create_dir_all(&dir).ok();
        table.write_csv(dir.join(format!("topk_latency_{n}.csv"))).unwrap();
        json_configs.push(format!(
            "{{\"graph\": {{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}},\n{}\n  }}",
            json_rows.join(",\n")
        ));
    }

    let pass = smoke_median_speedup.is_none_or(|s| s >= BAR);
    BenchReport::new("topk_latency")
        .field("k", format!("{K}"))
        .field("configs", format!("[{}]", json_configs.join(",\n  ")))
        .field(
            "smoke_median_seed_speedup",
            smoke_median_speedup.map_or("null".into(), |s| format!("{s:.3}")),
        )
        .field("bar", format!("{BAR:.2}"))
        .field("pass", format!("{pass}"))
        .write("BENCH_topk.json");
    match smoke_median_speedup {
        Some(s) => eprintln!(
            "[topk_latency] smoke median-seed bounded speedup {s:.2}x \
             (bar: >= {BAR:.2}x, {})",
            if pass { "PASS" } else { "FAIL" }
        ),
        None => eprintln!("[topk_latency] smoke config not run; bar not applicable"),
    }
    if !pass {
        std::process::exit(1);
    }
}

fn ids(cut: &[(NodeId, f64)]) -> Vec<NodeId> {
    cut.iter().map(|&(id, _)| id).collect()
}

/// Median-of-ROUNDS wall time for one request.
fn time_request(service: &tpa_core::RwrService, req: &QueryRequest) -> f64 {
    let mut samples = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let (resp, dt) = tpa_eval::time(|| service.submit(req));
        std::hint::black_box(&resp.unwrap());
        samples.push(dt.as_secs_f64());
    }
    median(&mut samples)
}

/// Uniform random relabeling (Fisher–Yates) for the "as-ingested"
/// baseline.
fn random_permutation(n: usize, rng: &mut StdRng) -> Permutation {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    Permutation::from_new_to_old(ids)
}

/// A top-k query only measures something when at least a few multiples
/// of `k` nodes are reachable from the seed; R-MAT strands many
/// low-degree nodes on tiny components (often a single 1–2 node cycle)
/// whose "top 20" is zero-score ties decided by the tie-break, not by
/// ranking. Seed classes draw from eligible nodes only.
const REACH_MIN: usize = 50 * K;

/// Bounded BFS: does `v` forward-reach at least `REACH_MIN` nodes?
fn eligible(g: &CsrGraph, v: NodeId) -> bool {
    let mut seen = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::from([v]);
    seen[v as usize] = true;
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &w in g.out_neighbors(u) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                if count >= REACH_MIN {
                    return true;
                }
                queue.push_back(w);
            }
        }
    }
    false
}

/// Positive-out-degree nodes sorted ascending by (degree, id).
fn by_degree(g: &CsrGraph) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = (0..g.n() as NodeId).filter(|&v| g.out_degree(v) > 0).collect();
    nodes.sort_by_key(|&v| (g.out_degree(v), v));
    nodes
}

/// The lowest-out-degree eligible node (ties to the lowest id).
fn low_degree_seed(g: &CsrGraph) -> NodeId {
    by_degree(g).into_iter().find(|&v| eligible(g, v)).expect("graph has an eligible node")
}

/// The eligible node closest above the median of positive out-degree.
fn median_degree_seed(g: &CsrGraph) -> NodeId {
    let nodes = by_degree(g);
    let mid = nodes.len() / 2;
    nodes[mid..]
        .iter()
        .chain(nodes[..mid].iter().rev())
        .copied()
        .find(|&v| eligible(g, v))
        .expect("graph has an eligible node")
}

/// The maximum-out-degree eligible node.
fn hub_seed(g: &CsrGraph) -> NodeId {
    by_degree(g).into_iter().rev().find(|&v| eligible(g, v)).expect("graph has an eligible node")
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}
