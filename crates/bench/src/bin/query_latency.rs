//! Single-seed query latency: dense vs direction-optimizing frontier
//! propagation through the serving engine.
//!
//! The TPA online phase runs `S` CPI iterations; for a single seed the
//! interim vector is nonzero only on the seed's i-hop neighborhood, so
//! the dense kernels waste almost all of their memory traffic on the
//! early iterations. This bench measures the indexed single-seed path
//! (`QueryEngine::query` — family sweep + rescale + stranger add) under
//! [`FrontierPolicy::Dense`] / [`FrontierPolicy::Sparse`] /
//! [`FrontierPolicy::Auto`], for three seed classes on label-shuffled
//! R-MAT graphs:
//!
//! * **low** — the minimum-positive-out-degree seed (tiny early
//!   frontiers, the sparse path's best case);
//! * **median** — a median-out-degree seed;
//! * **hub** — the maximum-out-degree seed (the frontier saturates in
//!   one hop; `Auto` must latch dense immediately and stay within 10%
//!   of forced dense).
//!
//! All policies are bitwise identical (asserted here on every seed).
//! Output: ASCII table, `results/query_latency_<n>.csv`, and
//! `BENCH_frontier.json`. Acceptance (full run, n=1M): `Auto` ≥ 3× the
//! dense latency on the low-degree seed, and never > 1.1× dense on the
//! hub seed.
//!
//! Env knobs: `TPA_QUICK=1` runs a single tiny config (CI smoke);
//! `TPA_LATENCY_N=<n>` forces one config of that size.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use tpa_bench::harness::results_dir;
use tpa_core::{FrontierPolicy, ParallelTransition, QueryEngine, TpaIndex, TpaParams};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{CsrGraph, NodeId, Permutation};

const ROUNDS: usize = 5;
/// Paper-style split points: the family sweep is `S − 1` propagations.
const PARAMS: TpaParams = TpaParams { c: 0.15, eps: 1e-9, s: 5, t: 10 };

fn main() {
    let quick = tpa_bench::harness::quick();
    let configs: Vec<(usize, usize)> = if let Some(n) =
        std::env::var("TPA_LATENCY_N").ok().and_then(|v| v.parse::<usize>().ok())
    {
        vec![(n, 10 * n)]
    } else if quick {
        vec![(20_000, 200_000)]
    } else {
        vec![(100_000, 1_000_000), (1_000_000, 10_000_000)]
    };

    let mut json_configs = Vec::new();
    // Acceptance numbers come from the LAST (largest) config.
    let mut low_speedup = 0.0f64;
    let mut hub_ratio = 0.0f64;
    for (n, m_target) in configs {
        let mut rng = StdRng::seed_from_u64(0x7a11);
        let generated = rmat(n, m_target, RmatConfig::default(), &mut rng);
        // Same honest baseline as spmv_kernels: uniformly shuffled labels
        // (raw R-MAT is already near-degree-ordered).
        let shuffle = random_permutation(n, &mut rng);
        let g = generated.permuted(&shuffle);
        let m = g.m();
        eprintln!("[query_latency] R-MAT graph (labels shuffled): n={n} m={m}");

        // Preprocess once (parallel backend — bitwise identical to
        // sequential); every engine shares the index.
        let (index, dt) = tpa_eval::time(|| {
            TpaIndex::preprocess_on(&ParallelTransition::with_default_threads(&g), PARAMS)
        });
        eprintln!("[query_latency] preprocessed in {}", tpa_eval::format_secs(dt.as_secs_f64()));
        let index = Arc::new(index);

        let seeds = [
            ("low", low_degree_seed(&g)),
            ("median", median_degree_seed(&g)),
            ("hub", hub_seed(&g)),
        ];

        let mut table = Table::new(
            format!("Single-seed indexed query latency on R-MAT n={n} m={m} (S={})", PARAMS.s),
            &["seed_class", "out_degree", "dense_ms", "sparse_ms", "auto_ms", "auto_speedup"],
        );
        let mut json_rows = Vec::new();
        for (label, seed) in seeds {
            let policies = [FrontierPolicy::Dense, FrontierPolicy::Sparse, FrontierPolicy::Auto];
            let mut times = [0.0f64; 3];
            let mut reference: Option<Vec<f64>> = None;
            for (k, policy) in policies.into_iter().enumerate() {
                let engine = QueryEngine::sequential(&g)
                    .with_index(Arc::clone(&index))
                    .with_frontier(policy);
                let scores = engine.query(seed); // warm-up + correctness
                match &reference {
                    None => reference = Some(scores),
                    Some(r) => {
                        assert_eq!(&scores, r, "policy {} diverged on seed {label}", policy.name())
                    }
                }
                let mut samples = Vec::with_capacity(ROUNDS);
                for _ in 0..ROUNDS {
                    let (s, dt) = tpa_eval::time(|| engine.query(seed));
                    std::hint::black_box(&s);
                    samples.push(dt.as_secs_f64());
                }
                times[k] = median(&mut samples);
            }
            let [dense, sparse, auto] = times;
            let speedup = dense / auto;
            if label == "low" {
                low_speedup = speedup;
            }
            if label == "hub" {
                hub_ratio = auto / dense;
            }
            table.row(&[
                label.into(),
                format!("{}", g.out_degree(seed)),
                format!("{:.3}", dense * 1e3),
                format!("{:.3}", sparse * 1e3),
                format!("{:.3}", auto * 1e3),
                format!("{speedup:.2}x"),
            ]);
            json_rows.push(format!(
                "    \"{label}\": {{\"seed\": {seed}, \"out_degree\": {}, \"dense_secs\": \
                 {dense:.6}, \"sparse_secs\": {sparse:.6}, \"auto_secs\": {auto:.6}, \
                 \"auto_speedup_vs_dense\": {speedup:.3}}}",
                g.out_degree(seed)
            ));
        }
        print!("{}", table.render());
        let dir = results_dir();
        std::fs::create_dir_all(&dir).ok();
        table.write_csv(dir.join(format!("query_latency_{n}.csv"))).unwrap();
        json_configs.push(format!(
            "  \"n{n}\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}},\n\
             {}\n  }}",
            json_rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"query_latency\",\n  \"s\": {},\n  \"t\": {},\n{},\n  \
         \"low_seed_auto_speedup\": {low_speedup:.3},\n  \"hub_seed_auto_vs_dense\": \
         {hub_ratio:.3}\n}}\n",
        PARAMS.s,
        PARAMS.t,
        json_configs.join(",\n")
    );
    std::fs::write("BENCH_frontier.json", &json).unwrap();
    eprintln!("[query_latency] wrote BENCH_frontier.json");
    let verdict = if quick {
        "(smoke run, no bar)".to_string()
    } else {
        format!(
            "({}, bars: low >= 3x and hub <= 1.1x dense)",
            if low_speedup >= 3.0 && hub_ratio <= 1.1 { "PASS" } else { "FAIL" }
        )
    };
    eprintln!(
        "[query_latency] low-seed auto speedup {low_speedup:.2}x, hub auto/dense \
         {hub_ratio:.2} {verdict}"
    );
}

/// Uniform random relabeling (Fisher–Yates) for the "as-ingested"
/// baseline.
fn random_permutation(n: usize, rng: &mut StdRng) -> Permutation {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    Permutation::from_new_to_old(ids)
}

/// The lowest-positive-out-degree node (ties to the lowest id): a
/// dangling seed's walk dies instantly, which benchmarks nothing.
fn low_degree_seed(g: &CsrGraph) -> NodeId {
    (0..g.n() as NodeId)
        .filter(|&v| g.out_degree(v) > 0)
        .min_by_key(|&v| (g.out_degree(v), v))
        .expect("graph has at least one edge")
}

/// A node of median positive out-degree.
fn median_degree_seed(g: &CsrGraph) -> NodeId {
    let mut nodes: Vec<NodeId> = (0..g.n() as NodeId).filter(|&v| g.out_degree(v) > 0).collect();
    nodes.sort_by_key(|&v| (g.out_degree(v), v));
    nodes[nodes.len() / 2]
}

/// The maximum-out-degree node.
fn hub_seed(g: &CsrGraph) -> NodeId {
    (0..g.n() as NodeId).max_by_key(|&v| (g.out_degree(v), std::cmp::Reverse(v))).unwrap()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}
