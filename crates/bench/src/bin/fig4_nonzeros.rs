//! Figure 4: (a) growth of nnz((Ãᵀ)^i) and (b) decay of
//! `Cᵢ = (1/n)·Σ_{j≠s}‖c⁽ⁱ⁾_s − c⁽ⁱ⁾_j‖₁` with the power i, on the
//! Slashdot and Google analogs.
//!
//! `Cᵢ` uses the paper's 30 random seeds `s`; the inner sum over all
//! `j ≠ s` is estimated from 100 sampled columns `j` (documented
//! substitution: the full sum is O(n²·m) and the estimator is unbiased).

use tpa_bench::harness::{load_dataset, results_dir};
use tpa_core::Transition;
use tpa_eval::{seeds::sample_seeds, Table};
use tpa_graph::NodeId;
use tpa_linalg::PatternMatrix;

const COLUMN_SAMPLES: usize = 100;
const SEEDS: usize = 30;
const MAX_POWER: usize = 7;

fn main() {
    let mut table = Table::new("Fig 4: nnz((A~^T)^i) and C_i", &["dataset", "i", "nnz", "c_i"]);
    for key in ["slashdot-s", "google-s"] {
        run_dataset(key, &mut table);
    }
    print!("{}", table.render());
    table.write_csv(results_dir().join("fig4_nonzeros.csv")).unwrap();
}

fn run_dataset(key: &str, table: &mut Table) {
    let d = load_dataset(key);
    let g = &d.graph;
    let n = g.n();
    let t = Transition::new(&d.graph);
    eprintln!("[fig4] {key}: n={n} m={}", g.m());

    // Seed columns (s) and sample columns (j), advanced power by power.
    let seed_ids = sample_seeds(n, SEEDS, 0xf194 ^ d.spec.seed);
    let col_ids = sample_seeds(n, COLUMN_SAMPLES, 0xc015 ^ d.spec.seed);
    let unit = |v: u32| {
        let mut x = vec![0.0f64; n];
        x[v as usize] = 1.0;
        x
    };
    let mut seed_cols: Vec<Vec<f64>> = seed_ids.iter().map(|&v| unit(v)).collect();
    let mut sample_cols: Vec<Vec<f64>> = col_ids.iter().map(|&v| unit(v)).collect();

    let mut pattern = PatternMatrix::from_rows(n, (0..n).map(|v| (v, g.in_neighbors(v as NodeId))));
    let mut scratch = vec![0.0f64; n];

    for i in 1..=MAX_POWER {
        if i > 1 {
            pattern = pattern.premultiply_by_adjacency(|v| g.in_neighbors(v as NodeId));
        }
        // Advance every tracked column one step: c ← Ãᵀ·c.
        for col in seed_cols.iter_mut().chain(sample_cols.iter_mut()) {
            t.propagate_into(1.0, col, &mut scratch);
            std::mem::swap(col, &mut scratch);
        }

        // C_i estimate.
        let mut total = 0.0;
        let mut pairs = 0usize;
        for (si, s_col) in seed_cols.iter().enumerate() {
            for (ji, j_col) in sample_cols.iter().enumerate() {
                if col_ids[ji] == seed_ids[si] {
                    continue;
                }
                let l1: f64 = s_col.iter().zip(j_col).map(|(a, b)| (a - b).abs()).sum();
                total += l1;
                pairs += 1;
            }
        }
        let ci = total / pairs as f64;
        table.row(&[
            key.into(),
            i.to_string(),
            pattern.count_nonzeros().to_string(),
            format!("{ci:.4}"),
        ]);
    }
}
