//! Figure 3: distribution of nonzeros in `(Ãᵀ)^i` for i = 1, 3, 5, 7 on
//! the Slashdot analog. Output: a coarse `g × g` block-count grid per
//! power (the CSV equivalent of the paper's heat maps).

use tpa_bench::harness::{load_dataset, results_dir};
use tpa_eval::Table;
use tpa_graph::NodeId;
use tpa_linalg::PatternMatrix;

const GRID: usize = 32;

fn main() {
    let d = load_dataset("slashdot-s");
    let g = &d.graph;
    let n = g.n();
    eprintln!("[fig3] slashdot-s: n={n} m={}", g.m());

    // Rows of Ãᵀ are in-neighbor lists.
    let adj = |v: usize| g.in_neighbors(v as NodeId);
    let mut current = PatternMatrix::from_rows(n, (0..n).map(|v| (v, g.in_neighbors(v as NodeId))));

    let mut summary = Table::new("Fig 3: nnz of (A~^T)^i on slashdot-s", &["i", "nnz", "density"]);
    let dir = results_dir();
    for i in 1..=7usize {
        if i > 1 {
            current = current.premultiply_by_adjacency(adj);
        }
        if i == 1 || i == 3 || i == 5 || i == 7 {
            let counts = current.block_counts(GRID);
            let mut grid_table = Table::new(
                format!("Fig 3: {GRID}x{GRID} block nonzero counts of (A~^T)^{i}"),
                &["row_block", "col_block", "nnz"],
            );
            for (r, row) in counts.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    grid_table.row(&[r.to_string(), c.to_string(), v.to_string()]);
                }
            }
            grid_table.write_csv(dir.join(format!("fig3_power{i}_grid.csv"))).unwrap();
        }
        let nnz = current.count_nonzeros();
        summary.row(&[
            i.to_string(),
            nnz.to_string(),
            format!("{:.6}", nnz as f64 / (n as f64 * n as f64)),
        ]);
    }
    print!("{}", summary.render());
    summary.write_csv(dir.join("fig3_density.csv")).unwrap();
    eprintln!("[fig3] grids written to {}", dir.display());
}
