//! Figure 1 (a,b,c): preprocessed-data size, preprocessing time and online
//! time of TPA vs BRPPR / FORA / HubPPR / BEAR-APPROX / NB-LIN on all
//! seven datasets. `OOM` rows reproduce the paper's omitted bars.

use tpa_bench::harness::{
    all_dataset_keys, budget_for, build_method, fmt_opt_secs, ground_truth, load_dataset,
    query_seeds, results_dir, FIG1_METHODS,
};
use tpa_eval::{metrics, time, Stats, Table};

fn main() {
    let mut mem = Table::new(
        "Fig 1(a): size of preprocessed data (MiB; '-' = online-only, OOM = over budget)",
        &["dataset", "method", "index_mib"],
    );
    let mut pre =
        Table::new("Fig 1(b): preprocessing time (s)", &["dataset", "method", "preprocess_s"]);
    let mut online = Table::new(
        "Fig 1(c): online time per query (s, avg over seeds)",
        &["dataset", "method", "online_s", "l1_error"],
    );

    for key in all_dataset_keys() {
        let d = load_dataset(key);
        let budget = budget_for(&d);
        eprintln!("[fig1] {key}: n={} m={} (budget {:?})", d.graph.n(), d.graph.m(), budget.0);
        let seeds = query_seeds(&d);
        let truths: Vec<Vec<f64>> = seeds.iter().map(|&s| ground_truth(&d, s)).collect();

        for kind in FIG1_METHODS {
            let built = build_method(kind, &d, budget);
            match built.method {
                None => {
                    let reason = match built.error {
                        Some(e) => {
                            eprintln!("[fig1] {key}/{}: {e}", built.label);
                            "OOM".to_string()
                        }
                        None => "-".to_string(),
                    };
                    mem.row(&[key.into(), built.label.into(), reason.clone()]);
                    pre.row(&[key.into(), built.label.into(), reason.clone()]);
                    online.row(&[key.into(), built.label.into(), reason.clone(), "-".into()]);
                }
                Some(method) => {
                    let mib = method.index_bytes() as f64 / (1 << 20) as f64;
                    let mem_cell = if method.index_bytes() == 0 {
                        "-".to_string()
                    } else {
                        format!("{mib:.3}")
                    };
                    mem.row(&[key.into(), built.label.into(), mem_cell]);
                    pre.row(&[key.into(), built.label.into(), fmt_opt_secs(built.preprocess)]);

                    // Adaptive measurement: the paper averages over 30
                    // seeds, but a method whose single query takes tens of
                    // seconds (HubPPR's full-vector loop) gets a 60 s
                    // cumulative cap with at least 3 seeds — the per-query
                    // average is unchanged, only its sample count shrinks.
                    let mut times = Vec::with_capacity(seeds.len());
                    let mut errs = Vec::with_capacity(seeds.len());
                    let mut spent = std::time::Duration::ZERO;
                    for (i, &s) in seeds.iter().enumerate() {
                        let (scores, dt) = time(|| method.query(s));
                        spent += dt;
                        times.push(dt);
                        errs.push(metrics::l1_error(&scores, &truths[i]));
                        if spent.as_secs() >= 60 && i + 1 >= 3 {
                            eprintln!(
                                "[fig1] {key}/{}: capped at {} seeds ({}s elapsed)",
                                built.label,
                                i + 1,
                                spent.as_secs()
                            );
                            break;
                        }
                    }
                    let t = Stats::from_durations(&times);
                    let e = Stats::from_samples(&errs);
                    online.row(&[
                        key.into(),
                        built.label.into(),
                        format!("{:.5}", t.mean),
                        format!("{:.4}", e.mean),
                    ]);
                }
            }
        }
    }

    print!("{}", mem.render());
    print!("{}", pre.render());
    print!("{}", online.render());
    let dir = results_dir();
    mem.write_csv(dir.join("fig1a_memory.csv")).unwrap();
    pre.write_csv(dir.join("fig1b_preprocess.csv")).unwrap();
    online.write_csv(dir.join("fig1c_online.csv")).unwrap();
    eprintln!("[fig1] wrote {}", dir.display());
}
