//! Observability overhead microbench: the disabled path must be free.
//!
//! The metrics layer promises near-zero cost when nothing is attached:
//! kernel profiling hooks compile down to one relaxed atomic load per
//! run when disabled, and a service built without a registry carries
//! only `Option` branches on the query path. This bench puts numbers
//! (and a CI bar) on that promise. Three measurements:
//!
//! 1. **Instrument hot path** — `Histogram::record` and `Counter::inc`
//!    ns/op, single-threaded, min over repetitions. These are the
//!    primitives every recorded event costs; the bar is that a
//!    histogram record stays under 1 µs (in practice: tens of ns).
//! 2. **Profiling hooks, off vs on** — mean indexed-query latency on a
//!    metrics-free service with kernel profiling globally disabled
//!    (`t_off`, what a user who never attaches a registry pays) vs
//!    globally enabled (`t_prof`). The two sides run interleaved in
//!    small chunks within each pass, so scheduler preemptions and
//!    frequency drift land on both sides of the comparison; the
//!    overhead is the median of per-pass ratios, so one disturbed pass
//!    cannot flip the verdict. **Bar: `t_prof` within 2% of `t_off`** —
//!    this is the ISSUE's "metrics-disabled reader QPS regresses < 2%"
//!    criterion in microbench form.
//! 3. **Full registry attached** — the same workload against a service
//!    built with `ServiceBuilder::metrics` (`t_full`), informational:
//!    the price of spans + per-request histograms when you *do* want
//!    telemetry.
//!
//! Output: ASCII table, `results/metrics_overhead.csv`, and
//! `BENCH_metrics_overhead.json`. Env knobs: `TPA_QUICK=1` shrinks the
//! graph and repetition counts. Exits nonzero if a bar fails (quick
//! mode included — the workload is small enough to hold everywhere).

use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use tpa_bench::harness::results_dir;
use tpa_bench::report::BenchReport;
use tpa_core::{set_profiling_enabled, QueryRequest, RwrService, ServiceBuilder, TpaParams};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_obs::{Histogram, MetricsRegistry};

const PARAMS: TpaParams = TpaParams { c: 0.15, eps: 1e-9, s: 5, t: 10 };

fn main() {
    let quick = tpa_bench::harness::quick();
    let (n, m_target) = if quick { (5_000, 50_000) } else { (20_000, 200_000) };
    let queries = if quick { 400 } else { 800 };
    let reps = if quick { 9 } else { 11 };
    let record_iters: u64 = if quick { 400_000 } else { 2_000_000 };

    // --- Measurement 1: instrument hot path, ns/op. ---
    let record_ns = {
        let h = Histogram::new();
        min_over(reps, || {
            let started = std::time::Instant::now();
            for i in 0..record_iters {
                // Spread across buckets so the shard stripes see the
                // same mix a latency histogram does.
                h.record(std::hint::black_box((i * 2654435761) & 0xf_ffff));
            }
            started.elapsed().as_nanos() as f64 / record_iters as f64
        })
    };
    let counter_ns = {
        let reg = MetricsRegistry::new();
        let c = reg.counter("bench_ops_total", "microbench counter");
        min_over(reps, || {
            let started = std::time::Instant::now();
            for _ in 0..record_iters {
                std::hint::black_box(&c).inc();
            }
            started.elapsed().as_nanos() as f64 / record_iters as f64
        })
    };
    eprintln!(
        "[metrics_overhead] instruments: Histogram::record {record_ns:.1} ns/op, \
         Counter::inc {counter_ns:.1} ns/op"
    );

    // --- Build the workload. ---
    let mut rng = StdRng::seed_from_u64(0x0b5e);
    let g = rmat(n, m_target, RmatConfig::default(), &mut rng);
    let m = g.m();
    eprintln!("[metrics_overhead] R-MAT graph: n={n} m={m}, {queries} queries x {reps} reps");
    let plain = ServiceBuilder::in_memory(g.clone())
        .preprocess(PARAMS)
        .build()
        .expect("valid serving configuration");

    // --- Measurement 2: profiling hooks off vs on, interleaved. ---
    // `set_profiling_enabled` flips a process-global flag, so the off
    // measurement must never overlap a metrics-attached service (whose
    // construction enables it). Each closure re-asserts the flag so the
    // chunk interleave can toggle freely.
    let query_off = |i: usize| {
        set_profiling_enabled(false);
        submit_one(&plain, i, n);
    };
    let query_prof = |i: usize| {
        set_profiling_enabled(true);
        submit_one(&plain, i, n);
    };
    set_profiling_enabled(false);
    for i in 0..queries {
        submit_one(&plain, i, n); // warmup
    }
    let passes: Vec<(f64, f64)> =
        (0..reps).map(|_| paired_mean_secs(queries, query_off, query_prof)).collect();
    set_profiling_enabled(false);
    let t_off = passes.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let t_prof = passes.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let prof_overhead = median_ratio(&passes);

    // --- Measurement 3: full registry attached (enables profiling). ---
    let registry = Arc::new(MetricsRegistry::new());
    let full = ServiceBuilder::in_memory(g)
        .preprocess(PARAMS)
        .metrics(Arc::clone(&registry))
        .build()
        .expect("valid serving configuration");
    let query_full = |i: usize| {
        set_profiling_enabled(true);
        submit_one(&full, i, n);
    };
    let full_passes: Vec<(f64, f64)> =
        (0..reps).map(|_| paired_mean_secs(queries, query_off, query_full)).collect();
    set_profiling_enabled(false);
    let t_full = full_passes.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let full_overhead = median_ratio(&full_passes);
    let recorded = full.metrics_snapshot().expect("registry attached").requests.total;

    // --- Report. ---
    let mut table = Table::new(
        format!("Observability overhead on R-MAT n={n} m={m} (indexed single-seed queries)"),
        &["path", "per_query", "overhead_vs_off"],
    );
    table.row(&["profiling-off".into(), tpa_eval::format_secs(t_off), "-".into()]);
    table.row(&[
        "profiling-on".into(),
        tpa_eval::format_secs(t_prof),
        format!("{:+.2}%", prof_overhead * 100.0),
    ]);
    table.row(&[
        "metrics-attached".into(),
        tpa_eval::format_secs(t_full),
        format!("{:+.2}%", full_overhead * 100.0),
    ]);
    print!("{}", table.render());
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    table.write_csv(dir.join("metrics_overhead.csv")).unwrap();

    BenchReport::new("metrics_overhead")
        .field("graph", format!("{{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}}"))
        .field("queries_per_rep", queries.to_string())
        .field("reps", reps.to_string())
        .field(
            "instruments",
            format!(
                "{{\"histogram_record_ns\": {record_ns:.2}, \"counter_inc_ns\": {counter_ns:.2}}}"
            ),
        )
        .field(
            "query_path",
            format!(
                "{{\"off_secs\": {t_off:.9}, \"profiling_secs\": {t_prof:.9}, \
                 \"full_secs\": {t_full:.9}, \"profiling_overhead\": {prof_overhead:.4}, \
                 \"full_overhead\": {full_overhead:.4}}}"
            ),
        )
        .field("requests_recorded", recorded.to_string())
        .write("BENCH_metrics_overhead.json");

    // --- Bars. ---
    let record_pass = record_ns < 1_000.0;
    let prof_pass = prof_overhead < 0.02;
    eprintln!(
        "[metrics_overhead] Histogram::record {record_ns:.1} ns/op {}",
        if record_pass { "(PASS, < 1000 ns)" } else { "(FAIL, >= 1000 ns)" }
    );
    eprintln!(
        "[metrics_overhead] disabled-path overhead {:+.2}% {}",
        prof_overhead * 100.0,
        if prof_pass { "(PASS, < 2%)" } else { "(FAIL, >= 2%)" }
    );
    eprintln!(
        "[metrics_overhead] metrics-attached overhead {:+.2}% over {recorded} recorded requests \
         (informational)",
        full_overhead * 100.0,
    );
    if !record_pass || !prof_pass {
        std::process::exit(1);
    }
}

/// One indexed single-seed request, seed derived from `i`.
fn submit_one(service: &RwrService, i: usize, n: usize) {
    let seed = ((i * 2654435761) % n) as tpa_graph::NodeId;
    let resp = service.submit(&QueryRequest::single(seed).top_k(10)).expect("query");
    std::hint::black_box(resp.epoch);
}

/// One paired pass: runs `a` and `b` for `queries` requests each,
/// interleaved in small chunks (alternating which side leads each
/// round), and returns their mean per-query seconds. Fine interleaving
/// makes scheduler preemptions and frequency drift hit both sides of
/// the comparison instead of biasing whichever ran second.
fn paired_mean_secs(
    queries: usize,
    mut a: impl FnMut(usize),
    mut b: impl FnMut(usize),
) -> (f64, f64) {
    const CHUNK: usize = 8;
    let mut secs = [0.0f64; 2];
    let mut done = [0usize; 2];
    let mut round = 0;
    while done[0] < queries || done[1] < queries {
        for slot in 0..2 {
            let side = (round + slot) % 2;
            if done[side] >= queries {
                continue;
            }
            let count = CHUNK.min(queries - done[side]);
            let started = std::time::Instant::now();
            for j in 0..count {
                let i = done[side] + j;
                if side == 0 {
                    a(i);
                } else {
                    b(i);
                }
            }
            secs[side] += started.elapsed().as_secs_f64();
            done[side] += count;
        }
        round += 1;
    }
    (secs[0] / queries as f64, secs[1] / queries as f64)
}

/// Median of per-pass `(b - a) / a` ratios — one disturbed pass (GC of
/// some neighbor container, a thermal dip) cannot flip the verdict.
fn median_ratio(passes: &[(f64, f64)]) -> f64 {
    let mut ratios: Vec<f64> = passes.iter().map(|(a, b)| (b - a) / a).collect();
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Min over `reps` runs of `f` — the least-noise estimator for a
/// deterministic workload.
fn min_over(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}
