//! Ablation: TPA accuracy across graph families with matched size.
//!
//! Erdős–Rényi (no structure), Watts–Strogatz (clustering, flat degrees),
//! Barabási–Albert (heavy tail, no communities), R-MAT (self-similar) and
//! LFR-lite (heavy tail + communities) at the same n and ~m. Shows which
//! structural ingredient buys the neighbor approximation its accuracy.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tpa_bench::harness::results_dir;
use tpa_core::{exact_rwr, CpiConfig, TpaIndex, TpaParams, Transition};
use tpa_eval::{metrics, seeds::sample_seeds, Stats, Table};
use tpa_graph::gen;
use tpa_graph::CsrGraph;

const N: usize = 4000;
const M: usize = 32_000;

fn main() {
    let params = TpaParams::new(5, 10);
    let cfg = CpiConfig::default();
    let mut table = Table::new(
        "Ablation: TPA error by graph model (n=4000, m~32000, S=5, T=10)",
        &["model", "actual_m", "tpa_l1_error", "pct_of_bound"],
    );
    let bound = tpa_core::bounds::total_bound(params.c, params.s);

    let models: Vec<(&str, CsrGraph)> = vec![
        ("erdos-renyi", gen::erdos_renyi_gnm(N, M, &mut rng(1))),
        ("watts-strogatz", gen::watts_strogatz(N, 8, 0.1, &mut rng(2))),
        ("barabasi-albert", gen::barabasi_albert(N, 4, &mut rng(3))),
        ("rmat", gen::rmat(N, M, gen::RmatConfig::default(), &mut rng(4))),
        (
            "lfr-lite",
            gen::lfr_lite(
                gen::LfrConfig { n: N, m: M, mu: 0.2, reciprocity: 0.6, ..Default::default() },
                &mut rng(5),
            )
            .graph,
        ),
    ];

    for (name, g) in models {
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, params);
        let seeds = sample_seeds(g.n(), 10, 0xab7e);
        let errs: Vec<f64> = seeds
            .iter()
            .map(|&s| metrics::l1_error(&index.query(&t, s), &exact_rwr(&g, s, &cfg)))
            .collect();
        let mean = Stats::from_samples(&errs).mean;
        table.row(&[
            name.into(),
            g.m().to_string(),
            format!("{mean:.4}"),
            format!("{:.1}%", 100.0 * mean / bound),
        ]);
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("ablation_models.csv")).unwrap();
}

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(0xab7e ^ seed)
}
