//! Figure 9: effect of the parameter T (start of the stranger
//! approximation) on the L1 errors of the neighbor approximation (NA), the
//! stranger approximation (SA) and full TPA, with S fixed to 5.
//!
//! A single traced CPI run per seed (plus one for PageRank) provides the
//! exact decomposition at every candidate T via cumulative-sum snapshots.

use tpa_bench::harness::{load_dataset, query_seeds, results_dir};
use tpa_core::{cpi_trace, CpiConfig, SeedSet, Transition};
use tpa_eval::{metrics, Stats, Table};

const S: usize = 5;
const T_SET: [usize; 6] = [6, 8, 10, 15, 20, 25];

/// Cumulative sums `Σ_{i<T} x(i)` snapshot at S and every T, plus the full
/// converged sum.
struct TraceSnapshots {
    at_s: Vec<f64>,
    at_t: Vec<Vec<f64>>,
    full: Vec<f64>,
}

fn snapshots(transition: &Transition<'_>, seeds: &SeedSet, cfg: &CpiConfig) -> TraceSnapshots {
    let n = transition.n();
    let mut cum = vec![0.0f64; n];
    let mut at_s = vec![0.0f64; n];
    let mut at_t: Vec<Vec<f64>> = vec![Vec::new(); T_SET.len()];
    cpi_trace(transition, seeds, cfg, 0, None, |i, x| {
        if i == S {
            at_s = cum.clone();
        }
        if let Some(pos) = T_SET.iter().position(|&t| t == i) {
            at_t[pos] = cum.clone();
        }
        for (c, v) in cum.iter_mut().zip(x) {
            *c += v;
        }
    });
    // Any T beyond convergence: snapshot equals the full sum.
    for slot in at_t.iter_mut() {
        if slot.is_empty() {
            *slot = cum.clone();
        }
    }
    TraceSnapshots { at_s, at_t, full: cum }
}

fn main() {
    let cfg = CpiConfig::default();
    let mut table = Table::new(
        "Fig 9: effect of T on the L1 errors of NA, SA and TPA (S=5)",
        &["dataset", "T", "na_error", "sa_error", "tpa_error"],
    );

    for key in ["livejournal-s", "pokec-s", "wikilink-s"] {
        let d = load_dataset(key);
        eprintln!("[fig9] {key}");
        let transition = Transition::new(&d.graph);
        let pr = snapshots(&transition, &SeedSet::Uniform, &cfg);
        let seeds = query_seeds(&d);
        let traces: Vec<TraceSnapshots> =
            seeds.iter().map(|&s| snapshots(&transition, &SeedSet::single(s), &cfg)).collect();

        for (ti, &t) in T_SET.iter().enumerate() {
            let decay = 1.0 - cfg.c;
            let scale =
                (decay.powi(S as i32) - decay.powi(t as i32)) / (1.0 - decay.powi(S as i32));
            let mut na = Vec::new();
            let mut sa = Vec::new();
            let mut tpa = Vec::new();
            // PageRank stranger part for this T.
            let p_stranger: Vec<f64> =
                pr.full.iter().zip(&pr.at_t[ti]).map(|(f, c)| f - c).collect();
            for tr in &traces {
                let family = &tr.at_s;
                let neighbor: Vec<f64> =
                    tr.at_t[ti].iter().zip(family).map(|(c, f)| c - f).collect();
                let stranger: Vec<f64> =
                    tr.full.iter().zip(&tr.at_t[ti]).map(|(f, c)| f - c).collect();
                let approx_neighbor: Vec<f64> = family.iter().map(|&f| scale * f).collect();
                na.push(metrics::l1_error(&neighbor, &approx_neighbor));
                sa.push(metrics::l1_error(&stranger, &p_stranger));
                let tpa_vec: Vec<f64> =
                    family.iter().zip(&p_stranger).map(|(&f, &p)| f + scale * f + p).collect();
                tpa.push(metrics::l1_error(&tr.full, &tpa_vec));
            }
            table.row(&[
                key.into(),
                t.to_string(),
                format!("{:.4}", Stats::from_samples(&na).mean),
                format!("{:.4}", Stats::from_samples(&sa).mean),
                format!("{:.4}", Stats::from_samples(&tpa).mean),
            ]);
        }
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("fig9_effect_t.csv")).unwrap();
}
