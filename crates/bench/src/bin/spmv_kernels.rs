//! SpMV (propagation) kernel micro-bench: flat vs cache-blocked vs
//! reordered+cache-blocked gathers.
//!
//! The CPI inner loop is one sparse transition apply per iteration; on
//! graphs whose score vector outgrows L2 it is memory-bound. This bench
//! measures the three locality levers the tiling layer provides, on
//! R-MAT graphs at two scales:
//!
//! * **flat** — the plain gather ([`TilePolicy::Flat`]);
//! * **tiled** — strip-mined gather ([`TilePolicy::Strip`]) with the
//!   auto cost model's width, original node order;
//! * **`<strategy>`+tiled** — the same strip-mined kernel on a graph
//!   relabeled by each [`ReorderStrategy`].
//!
//! All variants are bit-identical in results (up to relabeling for the
//! reordered ones); only the memory access pattern differs. Scalar
//! (1-lane) and fused 8-lane block passes are both timed.
//!
//! Output: ASCII table, `results/spmv_kernels.csv`, and
//! `BENCH_spmv.json` (trajectory record; the acceptance bar is
//! reordered+tiled ≥ 1.3× flat on the n=1M config's scalar pass).
//!
//! Env knobs: `TPA_QUICK=1` runs a single tiny config (CI smoke).

use rand::{rngs::StdRng, Rng, SeedableRng};
use tpa_bench::harness::results_dir;
use tpa_core::batch::ScoreBlock;
use tpa_core::tiling::{resolve_strip, STRIP_TARGET_BYTES};
use tpa_core::{Propagator, TilePolicy, Transition};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{reorder, CsrGraph, Permutation, ReorderStrategy};

const BLOCK_LANES: usize = 8;
const SCALAR_ROUNDS: usize = 5;
const BLOCK_ROUNDS: usize = 3;

struct Variant {
    label: String,
    graph: CsrGraph,
    policy: TilePolicy,
    reorder_secs: f64,
}

fn main() {
    let quick = tpa_bench::harness::quick();
    let configs: Vec<(usize, usize)> =
        if let Some(n) = std::env::var("TPA_SPMV_N").ok().and_then(|v| v.parse::<usize>().ok()) {
            vec![(n, 10 * n)]
        } else if quick {
            vec![(20_000, 200_000)]
        } else {
            vec![(100_000, 1_000_000), (1_000_000, 10_000_000)]
        };

    let mut json_configs = Vec::new();
    // Best reordered+tiled scalar speedup of the LAST (largest) config —
    // the 1.3x acceptance bar is defined on n=1M, so smaller configs
    // must not be allowed to satisfy it.
    let mut acceptance = 0.0f64;
    for (n, m_target) in configs {
        let mut config_best = 0.0f64;
        let mut rng = StdRng::seed_from_u64(0x5b3c);
        let generated = rmat(n, m_target, RmatConfig::default(), &mut rng);
        // R-MAT assigns low ids to the hottest quadrant, so the raw
        // generator output is already near-degree-ordered — unlike real
        // ingestion (crawl order, hash-sharded ids, …). Shuffle labels
        // uniformly so the baseline is an honest "arbitrary ids" graph,
        // which is exactly what the reordering layer exists to fix.
        let shuffle = random_permutation(n, &mut rng);
        let g = generated.permuted(&shuffle);
        let m = g.m();
        eprintln!("[spmv_kernels] R-MAT graph (labels shuffled): n={n} m={m}");

        // The width the auto model would pick for a scalar pass at this
        // scale (forced even where the model would stay flat, so the
        // table shows *why* the model stays flat there).
        let width = resolve_strip(TilePolicy::Auto, n, m, 1).unwrap_or(STRIP_TARGET_BYTES / 8);
        let auto_tiles = resolve_strip(TilePolicy::Auto, n, m, 1).is_some();

        let mut variants = vec![
            Variant {
                label: "flat".into(),
                graph: g.clone(),
                policy: TilePolicy::Flat,
                reorder_secs: 0.0,
            },
            Variant {
                label: "tiled".into(),
                graph: g.clone(),
                policy: TilePolicy::Strip(width),
                reorder_secs: 0.0,
            },
        ];
        for strategy in ReorderStrategy::ALL {
            let (permuted, dt) = tpa_eval::time(|| {
                let perm = reorder(&g, strategy);
                g.permuted(&perm)
            });
            // Flat on the relabeled graph isolates the reordering lever;
            // +tiled composes both.
            variants.push(Variant {
                label: format!("{}+flat", strategy.name()),
                graph: permuted.clone(),
                policy: TilePolicy::Flat,
                reorder_secs: dt.as_secs_f64(),
            });
            variants.push(Variant {
                label: format!("{}+tiled", strategy.name()),
                graph: permuted,
                policy: TilePolicy::Strip(width),
                reorder_secs: dt.as_secs_f64(),
            });
        }

        let mut table = Table::new(
            format!(
                "SpMV kernels on R-MAT n={n} m={m} (strip width {width} entries, auto model \
                 would {})",
                if auto_tiles { "tile" } else { "stay flat" }
            ),
            &[
                "variant",
                "scalar_ms",
                "scalar_speedup",
                "block8_ms",
                "block8_speedup",
                "reorder_secs",
            ],
        );
        let mut flat_scalar = 0.0;
        let mut flat_block = 0.0;
        let mut json_rows = Vec::new();
        for v in &variants {
            let t = Transition::new(&v.graph).with_tile_policy(v.policy);
            let scalar = time_scalar(&t, n);
            let block = time_block(&t, n);
            if v.label == "flat" {
                flat_scalar = scalar;
                flat_block = block;
            }
            let s_speed = flat_scalar / scalar;
            let b_speed = flat_block / block;
            if v.label.ends_with("+tiled") {
                config_best = config_best.max(s_speed);
            }
            table.row(&[
                v.label.clone(),
                format!("{:.2}", scalar * 1e3),
                format!("{s_speed:.2}x"),
                format!("{:.2}", block * 1e3),
                format!("{b_speed:.2}x"),
                format!("{:.2}", v.reorder_secs),
            ]);
            json_rows.push(format!(
                "    \"{}\": {{\"scalar_secs\": {scalar:.6}, \"scalar_speedup_vs_flat\": \
                 {s_speed:.3}, \"block8_secs\": {block:.6}, \"block8_speedup_vs_flat\": \
                 {b_speed:.3}, \"reorder_secs\": {:.3}}}",
                v.label, v.reorder_secs
            ));
        }
        print!("{}", table.render());
        let dir = results_dir();
        std::fs::create_dir_all(&dir).ok();
        table.write_csv(dir.join(format!("spmv_kernels_{n}.csv"))).unwrap();

        json_configs.push(format!(
            "  \"n{n}\": {{\n    \"graph\": {{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}},\n    \
             \"strip_width\": {width},\n    \"auto_model_tiles\": {auto_tiles},\n{}\n  }}",
            json_rows.join(",\n")
        ));
        acceptance = config_best;
    }

    let json = format!(
        "{{\n  \"bench\": \"spmv_kernels\",\n  \"block_lanes\": {BLOCK_LANES},\n\
         {},\n  \"best_reordered_tiled_scalar_speedup\": {acceptance:.3}\n}}\n",
        json_configs.join(",\n")
    );
    std::fs::write("BENCH_spmv.json", &json).unwrap();
    eprintln!("[spmv_kernels] wrote BENCH_spmv.json");
    eprintln!(
        "[spmv_kernels] best reordered+tiled scalar speedup: {acceptance:.2}x {}",
        if quick {
            "(smoke run, no bar)"
        } else if acceptance >= 1.3 {
            "(PASS, >= 1.3x)"
        } else {
            "(FAIL, < 1.3x)"
        }
    );
}

/// Uniform random relabeling (Fisher–Yates) for the "as-ingested"
/// baseline.
fn random_permutation(n: usize, rng: &mut StdRng) -> Permutation {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    Permutation::from_new_to_old(ids)
}

/// Deterministic dense input vector (every entry non-zero so no gather
/// is skippable).
fn input_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i.wrapping_mul(2654435761)) % 1000 + 1) as f64 / 1000.0 / n as f64).collect()
}

/// Median seconds of one scalar propagation pass.
fn time_scalar(t: &Transition<'_>, n: usize) -> f64 {
    let x = input_vector(n);
    let mut y = vec![0.0; n];
    t.propagate_into(0.85, &x, &mut y); // warm-up
    let mut samples = Vec::with_capacity(SCALAR_ROUNDS);
    for _ in 0..SCALAR_ROUNDS {
        let (_, dt) = tpa_eval::time(|| {
            t.propagate_into(0.85, &x, &mut y);
            std::hint::black_box(&mut y);
        });
        samples.push(dt.as_secs_f64());
    }
    median(&mut samples)
}

/// Median seconds of one fused 8-lane block pass.
fn time_block(t: &Transition<'_>, n: usize) -> f64 {
    let mut x = ScoreBlock::zeros(n, BLOCK_LANES);
    let base = input_vector(n * BLOCK_LANES);
    x.data_mut().copy_from_slice(&base);
    let mut y = ScoreBlock::zeros(n, BLOCK_LANES);
    t.propagate_block_into(0.85, &x, &mut y); // warm-up
    let mut samples = Vec::with_capacity(BLOCK_ROUNDS);
    for _ in 0..BLOCK_ROUNDS {
        let (_, dt) = tpa_eval::time(|| {
            t.propagate_block_into(0.85, &x, &mut y);
            std::hint::black_box(y.data());
        });
        samples.push(dt.as_secs_f64());
    }
    median(&mut samples)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}
