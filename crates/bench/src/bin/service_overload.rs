//! Overload behavior: goodput and tail latency of a gated `RwrService`
//! under 4× oversubscription, with shedding on vs off.
//!
//! Two closed-loop client pools hammer the same graph through a
//! two-slot admission gate for a fixed wall-clock window:
//!
//! * **shed off** — the gate queues every arrival (the queue is sized
//!   so a closed-loop pool can never overflow it). Every request
//!   eventually completes, but each one drags the whole waiting line
//!   behind it: client-observed p99 is the queue, not the kernel.
//! * **shed on** — `ShedPolicy::Reject` (no queue). Excess arrivals
//!   fail fast with `TpaError::Overloaded` and the client retries after
//!   a short backoff; admitted requests run immediately, so the p99 of
//!   *successful* requests collapses back to kernel scale.
//!
//! The CI bar (enforced at smoke scale, exit 1 on failure):
//!
//! 1. `p99(shed on) <= 0.5 * p99(shed off)` — shedding must buy tail
//!    latency, not just reject work.
//! 2. The deadline probe: a request whose deadline expires mid-sweep
//!    aborts at an iteration boundary — its observed latency stays well
//!    under the full-sweep time it would otherwise have burned.
//!
//! Output: ASCII table, `results/service_overload.csv`, and
//! `BENCH_overload.json`. Env knobs: `TPA_QUICK=1` for the smoke
//! config.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use tpa_bench::harness::results_dir;
use tpa_bench::report::BenchReport;
use tpa_core::{
    AdmissionConfig, CancelToken, QueryRequest, RwrService, ServiceBuilder, ShedPolicy, TpaError,
};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{CsrGraph, NodeId};
use tpa_obs::MetricsRegistry;

/// Slots in the admission gate; the client pool is 4× this.
const SLOTS: usize = 2;
const OVERSUBSCRIPTION: usize = 4;
/// Client-side retry backoff after an `Overloaded` rejection.
const RETRY_BACKOFF: Duration = Duration::from_micros(200);

fn main() {
    let quick = tpa_bench::harness::quick();
    let (n, m_target, window) = if quick {
        (20_000, 200_000, Duration::from_millis(1500))
    } else {
        (50_000, 500_000, Duration::from_secs(4))
    };
    let threads = SLOTS * OVERSUBSCRIPTION;

    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x10ad);
    let g = rmat(n, m_target, RmatConfig::default(), &mut rng);
    let m = g.m();
    eprintln!(
        "[service_overload] R-MAT n={n} m={m}; {threads} clients vs {SLOTS} slots \
         ({OVERSUBSCRIPTION}x oversubscribed), {window:?} window per mode"
    );

    // With `TPA_METRICS_OUT` set, one registry watches every service in
    // the bench; the dump then carries all the admission/abort families
    // (what the CI smoke step scrapes with `tpa stats --require`).
    let metrics_out = std::env::var("TPA_METRICS_OUT").ok().filter(|p| !p.is_empty());
    let registry = metrics_out.as_ref().map(|_| Arc::new(MetricsRegistry::new()));

    let off = run_mode(&g, false, threads, window, n, registry.as_ref());
    let on = run_mode(&g, true, threads, window, n, registry.as_ref());
    let p99_ratio = on.p99 / off.p99.max(1e-12);

    let mut table = Table::new(
        format!("overload: {threads} closed-loop clients vs {SLOTS} admission slots"),
        &["mode", "goodput_qps", "shed_total", "p50_ms", "p99_ms"],
    );
    for (label, r) in [("shed off", &off), ("shed on", &on)] {
        table.row(&[
            label.to_string(),
            format!("{:.1}", r.goodput),
            r.shed.to_string(),
            format!("{:.3}", r.p50 * 1e3),
            format!("{:.3}", r.p99 * 1e3),
        ]);
    }
    print!("{}", table.render());
    println!("p99 ratio (shed on / shed off): {p99_ratio:.3}");

    // --- Deadline probe: an expired deadline must abort the sweep at
    // an iteration boundary, not ride it to completion.
    let probe = deadline_probe(&g, n, registry.as_ref());
    println!(
        "deadline probe: full sweep {:.3}ms, budget {:.3}ms, aborted after {:.3}ms",
        probe.sweep * 1e3,
        probe.budget * 1e3,
        probe.abort * 1e3,
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    table.write_csv(dir.join("service_overload.csv")).unwrap();

    // --- Bars (enforced even in the smoke run: this is the CI step).
    let tail_pass = p99_ratio <= 0.5;
    let deadline_pass = probe.abort <= 0.5 * probe.sweep;
    let verdict = if tail_pass && deadline_pass { "PASS" } else { "FAIL" };
    BenchReport::new("service_overload")
        .field("graph", format!("{{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}}"))
        .field("slots", SLOTS.to_string())
        .field("clients", threads.to_string())
        .field("window_secs", format!("{:.3}", window.as_secs_f64()))
        .field("shed_off", off.json())
        .field("shed_on", on.json())
        .field("p99_ratio", format!("{p99_ratio:.4}"))
        .field(
            "deadline_probe",
            format!(
                "{{\"sweep_secs\": {:.6}, \"budget_secs\": {:.6}, \"abort_secs\": {:.6}}}",
                probe.sweep, probe.budget, probe.abort
            ),
        )
        .field(
            "verdict",
            format!(
                "{{\"pass\": {}, \"bars\": \"p99_ratio <= 0.5, deadline abort <= 0.5x sweep\"}}",
                tail_pass && deadline_pass
            ),
        )
        .write("BENCH_overload.json");
    if let (Some(path), Some(reg)) = (&metrics_out, &registry) {
        std::fs::write(path, reg.render_prometheus()).unwrap();
        eprintln!("[service_overload] wrote metrics dump to {path}");
    }
    eprintln!(
        "[service_overload] p99 ratio {p99_ratio:.3} (bar <= 0.5), deadline abort \
         {:.1}% of sweep (bar <= 50%) -> {verdict}",
        100.0 * probe.abort / probe.sweep.max(1e-12),
    );
    if verdict == "FAIL" {
        std::process::exit(1);
    }
}

struct ModeResult {
    ok: u64,
    shed: u64,
    goodput: f64,
    p50: f64,
    p99: f64,
}

impl ModeResult {
    fn json(&self) -> String {
        format!(
            "{{\"completed\": {}, \"shed\": {}, \"goodput_qps\": {:.2}, \
             \"p50_secs\": {:.6}, \"p99_secs\": {:.6}}}",
            self.ok, self.shed, self.goodput, self.p50, self.p99
        )
    }
}

/// One fixed-window closed-loop run: `threads` clients issuing exact
/// single-seed sweeps as fast as the gate admits them.
fn run_mode(
    g: &CsrGraph,
    shed_on: bool,
    threads: usize,
    window: Duration,
    n: usize,
    registry: Option<&Arc<MetricsRegistry>>,
) -> ModeResult {
    let cfg = if shed_on {
        AdmissionConfig::new(SLOTS).with_shed(ShedPolicy::Reject)
    } else {
        // A closed-loop pool can never have more than `threads` requests
        // in the system, so this queue never overflows: nothing sheds.
        AdmissionConfig::new(SLOTS).with_queue(threads)
    };
    let mut builder = ServiceBuilder::in_memory(g.clone()).admission(cfg);
    if let Some(reg) = registry {
        builder = builder.metrics(Arc::clone(reg));
    }
    let service: Arc<RwrService> = Arc::new(builder.build().unwrap());
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let samples: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let barrier = Barrier::new(threads);
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let service = Arc::clone(&service);
            let (ok, shed, samples, barrier) = (&ok, &shed, &samples, &barrier);
            s.spawn(move || {
                let mut local = Vec::new();
                let mut q = 0usize;
                barrier.wait();
                let t0 = Instant::now();
                while t0.elapsed() < window {
                    let seed = ((t * 7919 + q * 613 + 29) % n) as NodeId;
                    q += 1;
                    let req = QueryRequest::single(seed).exact();
                    let before = Instant::now();
                    match service.submit(&req) {
                        Ok(resp) => {
                            std::hint::black_box(&resp.result);
                            local.push(before.elapsed().as_secs_f64());
                            ok.fetch_add(1, Ordering::Relaxed); // ord: harness tally; totals are read after thread::scope joins every worker
                        }
                        Err(TpaError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed); // ord: harness tally; totals are read after thread::scope joins every worker
                            std::thread::sleep(RETRY_BACKOFF);
                        }
                        Err(e) => panic!("unexpected overload-bench error: {e}"),
                    }
                }
                samples.lock().unwrap().append(&mut local);
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let mut lat = samples.into_inner().unwrap();
    lat.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed)); // ord: read after thread::scope joined every worker; the join is the synchronization
    assert!(!lat.is_empty(), "a {window:?} window must complete some requests");
    if shed_on {
        assert!(shed > 0, "4x oversubscription against a rejecting gate must shed");
    } else {
        assert_eq!(shed, 0, "the closed-loop pool must fit the shed-off queue");
    }
    ModeResult { ok, shed, goodput: ok as f64 / wall, p50: q(0.50), p99: q(0.99) }
}

struct DeadlineProbe {
    sweep: f64,
    budget: f64,
    abort: f64,
}

/// Measures a full exact sweep, then re-issues it with a deadline far
/// below the sweep time: the request must come back `DeadlineExceeded`
/// promptly instead of finishing the sweep it can no longer use. Also
/// fires one pre-cancelled request so the cancel counter is exercised.
fn deadline_probe(
    g: &CsrGraph,
    n: usize,
    registry: Option<&Arc<MetricsRegistry>>,
) -> DeadlineProbe {
    let mut builder = ServiceBuilder::in_memory(g.clone());
    if let Some(reg) = registry {
        builder = builder.metrics(Arc::clone(reg));
    }
    let service = builder.build().unwrap();
    let seed = (n / 3) as NodeId;
    let token = CancelToken::new();
    token.cancel();
    match service.submit(&QueryRequest::single(seed).with_cancel(token)) {
        Err(TpaError::Cancelled) => {}
        other => panic!("pre-cancelled probe must fail typed, got {other:?}"),
    }
    let (resp, dt) = tpa_eval::time(|| service.submit(&QueryRequest::single(seed).exact()));
    std::hint::black_box(&resp.unwrap().result);
    let sweep = dt.as_secs_f64();
    let budget = Duration::from_secs_f64((sweep / 6.0).max(50e-6));
    let req = QueryRequest::single(seed).exact().with_deadline(budget);
    let (out, dt) = tpa_eval::time(|| service.submit(&req));
    match out {
        Err(TpaError::DeadlineExceeded { .. }) => {}
        Ok(_) => panic!("a {budget:?} budget cannot cover a {sweep:.4}s sweep"),
        Err(e) => panic!("unexpected deadline-probe error: {e}"),
    }
    DeadlineProbe { sweep, budget: budget.as_secs_f64(), abort: dt.as_secs_f64() }
}
