//! Table III: measured L1 errors of the neighbor approximation, the
//! stranger approximation, and full TPA against their theoretical bounds
//! (Lemmas 1/3, Theorem 2), on every dataset.

use tpa_bench::harness::{all_dataset_keys, load_dataset, query_seeds, results_dir};
use tpa_core::{bounds, decompose, CpiConfig, SeedSet, TpaParams, Transition};
use tpa_eval::{metrics, Stats, Table};

fn main() {
    let mut t = Table::new(
        "Table III: error statistics (actual vs theoretical bound)",
        &[
            "dataset",
            "na_bound",
            "na_error",
            "na_pct",
            "sa_bound",
            "sa_error",
            "sa_pct",
            "tpa_bound",
            "tpa_error",
            "tpa_pct",
        ],
    );

    for key in all_dataset_keys() {
        let d = load_dataset(key);
        let (s, tt) = (d.spec.s, d.spec.t);
        let params = TpaParams::new(s, tt);
        let cfg = CpiConfig::default();
        let tr = Transition::new(&d.graph);
        eprintln!("[table3] {key} (S={s}, T={tt})");

        // Seed-independent pieces: the PageRank stranger part.
        let p_stranger = tpa_core::pagerank_window(&d.graph, &cfg, tt, None).scores;
        let scale = params.neighbor_scale();

        let mut na_errs = Vec::new();
        let mut sa_errs = Vec::new();
        let mut tpa_errs = Vec::new();
        for &seed in &query_seeds(&d) {
            let dec = decompose(&tr, &SeedSet::single(seed), &cfg, s, tt);
            // Neighbor approximation: r̃_neighbor = scale · r_family.
            let approx_neighbor: Vec<f64> = dec.family.iter().map(|&f| scale * f).collect();
            na_errs.push(metrics::l1_error(&dec.neighbor, &approx_neighbor));
            // Stranger approximation: r̃_stranger = p_stranger.
            sa_errs.push(metrics::l1_error(&dec.stranger, &p_stranger));
            // Full TPA vs exact.
            let exact = dec.total();
            let tpa: Vec<f64> =
                dec.family.iter().zip(&p_stranger).map(|(&f, &ps)| f + scale * f + ps).collect();
            tpa_errs.push(metrics::l1_error(&exact, &tpa));
        }

        let na = Stats::from_samples(&na_errs).mean;
        let sa = Stats::from_samples(&sa_errs).mean;
        let tp = Stats::from_samples(&tpa_errs).mean;
        let nb = bounds::neighbor_bound(cfg.c, s, tt);
        let sb = bounds::stranger_bound(cfg.c, tt);
        let tb = bounds::total_bound(cfg.c, s);
        t.row(&[
            key.into(),
            format!("{nb:.4}"),
            format!("{na:.4}"),
            format!("{:.2}%", 100.0 * na / nb),
            format!("{sb:.4}"),
            format!("{sa:.4}"),
            format!("{:.2}%", 100.0 * sa / sb),
            format!("{tb:.4}"),
            format!("{tp:.4}"),
            format!("{:.2}%", 100.0 * tp / tb),
        ]);
    }

    print!("{}", t.render());
    t.write_csv(results_dir().join("table3_errors.csv")).unwrap();
}
