//! Ablation: how much block-wise structure does the neighbor
//! approximation actually need?
//!
//! Sweeps the LFR mixing parameter μ (community strength) and edge
//! reciprocity on a fixed-size graph and reports (a) the Fig-6 stability
//! metric `‖Ā^S f − f‖₁` and (b) TPA's real L1 error. The paper asserts
//! the neighbor approximation works *because of* block structure — this
//! measures the claim quantitatively.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tpa_bench::harness::results_dir;
use tpa_core::{cpi, exact_rwr, CpiConfig, SeedSet, TpaIndex, TpaParams, Transition};
use tpa_eval::{metrics, seeds::sample_seeds, Stats, Table};
use tpa_graph::gen::{lfr_lite, LfrConfig};

const N: usize = 4000;
const M: usize = 32_000;
const S: usize = 5;
const T: usize = 10;

fn main() {
    let cfg = CpiConfig::default();
    let params = TpaParams::new(S, T);
    let mut table = Table::new(
        "Ablation: block structure (mu x reciprocity) vs TPA error",
        &["mu", "reciprocity", "stability_l1", "tpa_l1_error"],
    );

    for &mu in &[0.05, 0.2, 0.4, 0.7, 1.0] {
        for &rec in &[0.0, 0.5, 0.9] {
            let mut rng = StdRng::seed_from_u64(0xab1a + (mu * 100.0) as u64 + rec as u64);
            let g = lfr_lite(
                LfrConfig { n: N, m: M, mu, reciprocity: rec, ..Default::default() },
                &mut rng,
            )
            .graph;
            let t = Transition::new(&g);
            let index = TpaIndex::preprocess(&g, params);
            let seeds = sample_seeds(g.n(), 10, 0xab1a);

            let mut stab = Vec::new();
            let mut errs = Vec::new();
            for &seed in &seeds {
                // Stability of the family vector under S more steps.
                let f = cpi(&t, &SeedSet::single(seed), &cfg, 0, Some(S - 1)).scores;
                let mut x = f.clone();
                let mut y = vec![0.0; g.n()];
                for _ in 0..S {
                    t.propagate_into(1.0, &x, &mut y);
                    std::mem::swap(&mut x, &mut y);
                }
                stab.push(metrics::l1_error(&x, &f));
                // Actual TPA error.
                errs.push(metrics::l1_error(&index.query(&t, seed), &exact_rwr(&g, seed, &cfg)));
            }
            table.row(&[
                format!("{mu:.2}"),
                format!("{rec:.1}"),
                format!("{:.4}", Stats::from_samples(&stab).mean),
                format!("{:.4}", Stats::from_samples(&errs).mean),
            ]);
        }
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("ablation_structure.csv")).unwrap();
}
