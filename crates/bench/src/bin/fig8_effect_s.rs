//! Figure 8: effect of the parameter S (start of the neighbor
//! approximation) on TPA's online time and L1 error, with T fixed to 10,
//! on the LiveJournal and Pokec analogs.

use tpa_bench::harness::{ground_truth, load_dataset, query_seeds, results_dir};
use tpa_core::{TpaIndex, TpaParams, Transition};
use tpa_eval::{metrics, time, Stats, Table};

const T: usize = 10;

fn main() {
    let mut table = Table::new(
        "Fig 8: effect of S on online time and L1 error (T=10)",
        &["dataset", "S", "online_s", "l1_error"],
    );

    for key in ["livejournal-s", "pokec-s"] {
        let d = load_dataset(key);
        eprintln!("[fig8] {key}");
        let seeds = query_seeds(&d);
        let truths: Vec<Vec<f64>> = seeds.iter().map(|&s| ground_truth(&d, s)).collect();
        let transition = Transition::new(&d.graph);

        for s in 2..=6usize {
            let index = TpaIndex::preprocess(&d.graph, TpaParams::new(s, T));
            let mut times = Vec::new();
            let mut errs = Vec::new();
            for (i, &seed) in seeds.iter().enumerate() {
                let (scores, dt) = time(|| index.query(&transition, seed));
                times.push(dt);
                errs.push(metrics::l1_error(&scores, &truths[i]));
            }
            table.row(&[
                key.into(),
                s.to_string(),
                format!("{:.5}", Stats::from_durations(&times).mean),
                format!("{:.4}", Stats::from_samples(&errs).mean),
            ]);
        }
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("fig8_effect_s.csv")).unwrap();
}
