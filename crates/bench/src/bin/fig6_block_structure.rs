//! Figure 6: `‖Ā^S·f − f‖₁` on real (block-structured) graphs vs random
//! (Erdős–Rényi) controls with the same node and edge counts.
//!
//! `f` is the family vector (CPI iterations `0..S−1`, S = 5 as in the
//! paper); `Ā^S·f` propagates it S further steps *without* decay. A small
//! difference means the score distribution is stable under propagation —
//! the property the neighbor approximation relies on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tpa_bench::harness::{load_dataset, query_seeds, results_dir};
use tpa_core::{cpi, CpiConfig, SeedSet, Transition};
use tpa_eval::{metrics, Stats, Table};
use tpa_graph::gen::er_control;
use tpa_graph::CsrGraph;

const S: usize = 5;

fn main() {
    let mut table = Table::new(
        "Fig 6: ||A^S f - f||_1, real vs random graphs (S=5, avg over seeds)",
        &["dataset", "real_graph", "random_graph"],
    );
    // The paper's five datasets for this figure.
    for key in ["slashdot-s", "google-s", "pokec-s", "livejournal-s", "wikilink-s"] {
        let d = load_dataset(key);
        eprintln!("[fig6] {key}");
        let seeds = query_seeds(&d);
        let real = avg_stability(&d.graph, &seeds);
        let mut rng = StdRng::seed_from_u64(0xf166 ^ d.spec.seed);
        let random_graph = er_control(&d.graph, &mut rng);
        let random = avg_stability(&random_graph, &seeds);
        table.row(&[key.into(), format!("{real:.4}"), format!("{random:.4}")]);
    }
    print!("{}", table.render());
    table.write_csv(results_dir().join("fig6_block_structure.csv")).unwrap();
}

/// Mean of `‖Ā^S·f − f‖₁` over the query seeds.
fn avg_stability(g: &CsrGraph, seeds: &[u32]) -> f64 {
    let t = Transition::new(g);
    let cfg = CpiConfig::default();
    let samples: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let f = cpi(&t, &SeedSet::single(seed), &cfg, 0, Some(S - 1)).scores;
            let mut x = f.clone();
            let mut y = vec![0.0; g.n()];
            for _ in 0..S {
                t.propagate_into(1.0, &x, &mut y);
                std::mem::swap(&mut x, &mut y);
            }
            metrics::l1_error(&x, &f)
        })
        .collect();
    Stats::from_samples(&samples).mean
}
