//! Dynamic-graph serving bench: incremental maintenance vs
//! rebuild-and-requery.
//!
//! Scenario: a graph with ≥100k nodes serves a working set of cached RWR
//! score vectors while a 1% edge-update batch (half inserts, half
//! deletes) lands. Two ways to get the scores current again:
//!
//! * **incremental** — apply the batch to the delta overlay
//!   (`DynamicTransition::apply`) and fold the OSP offset into each
//!   cached vector (`ScoreCache::refresh`), exact mode and approximate
//!   mode (`tolerance = 1e-6`);
//! * **rebuild** — materialize a fresh CSR from the merged view and
//!   recompute every cached seed from scratch.
//!
//! Also measured: raw update throughput through the overlay (edges/sec,
//! batches of 1 000), the L1 agreement of both incremental modes with
//! the from-scratch answer, and **publish latency** — the cost of
//! freezing the overlay into an immutable epoch snapshot after a small
//! batch, copy-on-write (`DynamicTransition::publish_patched`, the
//! `O(batch)` path the service uses) vs a full CSR rebuild
//! (`DynamicGraph::snapshot`, `O(n + m)`). The p99 CoW publish must
//! beat the median rebuild by a wide margin or the publish path has
//! regressed to scaling with the graph; the process exits nonzero below
//! 5× so the CI smoke run catches it.
//!
//! Output: ASCII table, `results/dynamic_updates.csv`, and
//! `BENCH_dynamic.json` (trajectory record for later PRs).
//!
//! Env knobs: `TPA_QUICK=1` shrinks the graph 5×; `TPA_DYN_N` overrides
//! the node count; `TPA_DYN_PROFILE=1` prints per-kernel timings
//! (clean vs dirty block pass, apply+snapshot) and exits.

use rand::{rngs::StdRng, Rng, SeedableRng};
use tpa_bench::harness::results_dir;
use tpa_bench::report::{ns_to_secs, BenchReport};
use tpa_core::batch::cpi_batch;
use tpa_core::{CpiConfig, DynamicTransition, MaintenanceMode, ScoreCache, Transition};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{DynamicGraph, EdgeUpdate, NodeId};
use tpa_obs::Histogram;

const SEEDS: usize = 8;
const UPDATE_FRACTION: f64 = 0.01;
const APPROX_TOLERANCE: f64 = 1e-6;

fn main() {
    let n: usize = std::env::var("TPA_DYN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tpa_bench::harness::quick() { 20_000 } else { 100_000 });
    let m = 10 * n;
    let mut rng = StdRng::seed_from_u64(0xd15c);
    let base = rmat(n, m, RmatConfig::default(), &mut rng);
    let m = base.m(); // includes dangling self-loop patches
    eprintln!("[dynamic_updates] R-MAT graph: n={n} m={m}");

    let batch = make_update_batch(&base, (m as f64 * UPDATE_FRACTION) as usize, &mut rng);
    eprintln!(
        "[dynamic_updates] update batch: {} updates (~{UPDATE_FRACTION:.0e} of m)",
        batch.len()
    );

    let cfg = CpiConfig::default();
    let seeds: Vec<NodeId> = (0..SEEDS).map(|i| ((i * 2654435761) % n) as NodeId).collect();

    // --- Raw update throughput through the overlay (no score upkeep). ---
    let mut tput_graph = DynamicGraph::new(base.clone());
    let (applied, dt) = tpa_eval::time(|| {
        let mut applied = 0usize;
        for chunk in batch.chunks(1000) {
            let stats = tput_graph.apply(chunk);
            applied += stats.inserted + stats.deleted;
        }
        applied
    });
    let throughput = batch.len() as f64 / dt.as_secs_f64();
    eprintln!(
        "[dynamic_updates] overlay throughput: {throughput:.0} updates/sec ({applied} applied)"
    );

    if std::env::var("TPA_DYN_PROFILE").is_ok() {
        use tpa_core::batch::ScoreBlock;
        use tpa_core::Propagator;
        let lanes = SEEDS;
        let xb = ScoreBlock::zeros(n, lanes);
        let mut yb = ScoreBlock::zeros(n, lanes);
        let clean_t = Transition::new(&base);
        let (_, dt) = tpa_eval::time(|| {
            for _ in 0..10 {
                clean_t.propagate_block_into(0.85, &xb, &mut yb);
            }
        });
        eprintln!("[profile] clean CSR block iter: {:.1} ms", dt.as_secs_f64() * 100.0);
        let mut dyn_t = DynamicTransition::new(DynamicGraph::new(base.clone()));
        dyn_t.apply(&batch);
        let (_, dt) = tpa_eval::time(|| {
            for _ in 0..10 {
                dyn_t.propagate_block_into(0.85, &xb, &mut yb);
            }
        });
        eprintln!("[profile] dirty overlay block iter: {:.1} ms", dt.as_secs_f64() * 100.0);
        let (_, dt) = tpa_eval::time(|| {
            let mut g2 = DynamicGraph::new(base.clone());
            g2.apply(&batch);
            std::hint::black_box(g2.snapshot());
        });
        eprintln!("[profile] apply+snapshot: {:.1} ms", dt.as_secs_f64() * 1000.0);
        return;
    }

    // --- Publish latency: CoW patch snapshots vs full-rebuild
    // publishes. Small batches land on the overlay and each one is
    // frozen into an epoch; rebuilds are sampled sparsely (they cost
    // O(n + m) each). ---
    let publish_rounds = if tpa_bench::harness::quick() { 24 } else { 48 };
    let mut pub_t =
        DynamicTransition::new(DynamicGraph::new(base.clone()).with_compact_threshold(None));
    let cow_hist = Histogram::new();
    let rebuild_hist = Histogram::new();
    let publish_started = std::time::Instant::now();
    for round in 0..publish_rounds {
        let small = make_update_batch(&base, 16, &mut rng);
        pub_t.apply(&small);
        let (snap, dt) = tpa_eval::time(|| pub_t.publish_patched());
        std::hint::black_box(snap.delta_edges());
        cow_hist.record_duration(dt);
        if round % 8 == 0 {
            let (full, dt) = tpa_eval::time(|| pub_t.graph().snapshot());
            std::hint::black_box(full.m());
            rebuild_hist.record_duration(dt);
        }
    }
    let epochs_per_sec = publish_rounds as f64 / publish_started.elapsed().as_secs_f64();
    let cow_p50 = ns_to_secs(cow_hist.quantile(0.50));
    let cow_p99 = ns_to_secs(cow_hist.quantile(0.99));
    let rebuild_p50 = ns_to_secs(rebuild_hist.quantile(0.50));
    let publish_speedup = rebuild_p50 / cow_p99.max(1e-12);
    eprintln!(
        "[dynamic_updates] publish: {epochs_per_sec:.0} epochs/sec, CoW p50 {} p99 {}, \
         rebuild p50 {} ({publish_speedup:.0}x at p99)",
        tpa_eval::format_secs(cow_p50),
        tpa_eval::format_secs(cow_p99),
        tpa_eval::format_secs(rebuild_p50),
    );

    // --- Incremental maintenance, exact and approximate. ---
    let mut results = Vec::new();
    for (label, mode) in [
        ("incremental-exact", MaintenanceMode::Exact),
        ("incremental-approx", MaintenanceMode::Approximate { tolerance: APPROX_TOLERANCE }),
    ] {
        // A 1% batch followed by ~10² dense propagation passes is exactly
        // the regime the compaction threshold exists for: fold the
        // overlay (≈ 8 passes worth of work) before propagating.
        let overlay = DynamicGraph::new(base.clone()).with_compact_threshold(Some(0.005));
        let mut t = DynamicTransition::new(overlay);
        let mut cache = ScoreCache::new(cfg, mode);
        cache.warm(&t, &seeds);
        let (iters, secs) = {
            let ((delta, stats), dt) = tpa_eval::time(|| {
                let delta = t.apply(&batch);
                let stats = cache.refresh(&t, &delta);
                (delta, stats)
            });
            let _ = delta;
            (stats.iterations, dt.as_secs_f64())
        };
        results.push((label, secs, iters, t, cache));
    }

    // --- Rebuild-and-requery baseline (same final graph state; the
    // requery uses the same fused block kernel the refresh does, so the
    // comparison isolates incremental-vs-from-scratch, not batching). ---
    let (rebuild_scores, rebuild_secs) = {
        let mut g = DynamicGraph::new(base.clone());
        g.apply(&batch);
        let (scores, dt) = tpa_eval::time(|| {
            let snapshot = g.snapshot();
            let t = Transition::new(&snapshot);
            cpi_batch(&t, &seeds, &cfg, 0, None).into_lanes()
        });
        (scores, dt.as_secs_f64())
    };

    // --- Accuracy + report. ---
    let mut table = Table::new(
        format!(
            "Dynamic updates on R-MAT n={n} m={m} ({} updates, {SEEDS} cached seeds)",
            batch.len()
        ),
        &["path", "seconds", "speedup_vs_rebuild", "offset_iters", "max_L1_vs_rebuild"],
    );
    table.row(&[
        "rebuild+requery".into(),
        format!("{rebuild_secs:.4}"),
        "1.00x".into(),
        "-".into(),
        "0".into(),
    ]);
    table.row(&[
        "publish-cow-p99".into(),
        format!("{cow_p99:.6}"),
        format!("{publish_speedup:.2}x"),
        "-".into(),
        "-".into(),
    ]);
    table.row(&[
        "publish-rebuild-p50".into(),
        format!("{rebuild_p50:.6}"),
        "1.00x".into(),
        "-".into(),
        "-".into(),
    ]);
    let mut json_rows = Vec::new();
    for (label, secs, iters, _t, cache) in &results {
        let max_l1 = seeds
            .iter()
            .enumerate()
            .map(|(j, &s)| {
                cache
                    .scores(s)
                    .unwrap()
                    .iter()
                    .zip(&rebuild_scores[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        let speedup = rebuild_secs / secs;
        table.row(&[
            label.to_string(),
            format!("{secs:.4}"),
            format!("{speedup:.2}x"),
            iters.to_string(),
            format!("{max_l1:.2e}"),
        ]);
        json_rows.push((label.to_string(), *secs, speedup, max_l1));
    }
    print!("{}", table.render());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    table.write_csv(dir.join("dynamic_updates.csv")).unwrap();

    // Trajectory record for later PRs.
    let mut report = BenchReport::new("dynamic_updates")
        .field("graph", format!("{{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}}"))
        .field("update_batch", batch.len().to_string())
        .field("cached_seeds", SEEDS.to_string())
        .field("update_throughput_per_sec", format!("{throughput:.0}"))
        .field(
            "publish",
            format!(
                "{{\"epochs_per_sec\": {epochs_per_sec:.1}, \"cow_p50_secs\": {cow_p50:.8}, \
                 \"cow_p99_secs\": {cow_p99:.8}, \"rebuild_p50_secs\": {rebuild_p50:.8}, \
                 \"p99_speedup_vs_rebuild\": {publish_speedup:.2}}}"
            ),
        )
        .field("rebuild_requery_secs", format!("{rebuild_secs:.6}"));
    for (label, secs, speedup, max_l1) in &json_rows {
        report = report.field(
            label,
            format!(
                "{{\"secs\": {secs:.6}, \"speedup_vs_rebuild\": {speedup:.3}, \
                 \"max_l1_vs_rebuild\": {max_l1:.3e}}}"
            ),
        );
    }
    report.write("BENCH_dynamic.json");

    let exact_speedup = json_rows
        .iter()
        .find(|(l, ..)| l == "incremental-exact")
        .map(|(_, _, s, _)| *s)
        .unwrap_or(0.0);
    eprintln!(
        "[dynamic_updates] exact incremental speedup: {exact_speedup:.2}x {}",
        if exact_speedup > 1.0 { "(PASS, > 1x)" } else { "(FAIL, <= 1x)" }
    );
    eprintln!(
        "[dynamic_updates] publish p99 speedup vs rebuild: {publish_speedup:.1}x {}",
        if publish_speedup >= 10.0 { "(PASS, >= 10x)" } else { "(FAIL, < 10x)" }
    );
    // Hard floor for the CI smoke run: a CoW publish within 5x of a
    // full rebuild means the publish path scales with the graph again.
    if publish_speedup < 5.0 {
        eprintln!("[dynamic_updates] ERROR: publish path is no longer O(batch)");
        std::process::exit(1);
    }
}

/// Builds the update batch: half deletes sampled evenly from existing
/// edges, half inserts of fresh random pairs (collisions with existing
/// edges become no-ops, matching a real stream).
fn make_update_batch(g: &tpa_graph::CsrGraph, k: usize, rng: &mut StdRng) -> Vec<EdgeUpdate> {
    let n = g.n();
    let mut batch = Vec::with_capacity(k);
    let deletes = k / 2;
    let stride = (g.m() / deletes.max(1)).max(1);
    for (u, v) in g.edges().step_by(stride).take(deletes) {
        batch.push(EdgeUpdate::Delete(u, v));
    }
    while batch.len() < k {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        batch.push(EdgeUpdate::Insert(u, v));
    }
    batch
}
