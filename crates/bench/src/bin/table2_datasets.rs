//! Table II: dataset statistics and the per-dataset S/T split points,
//! for the synthetic analogs actually generated.

use tpa_bench::harness::{all_dataset_keys, load_dataset, results_dir};
use tpa_eval::Table;
use tpa_graph::NodeId;

fn main() {
    let mut t = Table::new(
        "Table II: dataset statistics (synthetic analogs; S/T from the paper)",
        &[
            "dataset",
            "analog_of",
            "nodes",
            "edges",
            "avg_deg",
            "max_out_deg",
            "scale_factor",
            "S",
            "T",
        ],
    );
    for key in all_dataset_keys() {
        let d = load_dataset(key);
        let g = &d.graph;
        let max_deg = (0..g.n() as NodeId).map(|v| g.out_degree(v)).max().unwrap_or(0);
        let scale = d.spec.original_nodes as f64 / d.spec.nodes as f64;
        t.row(&[
            key.into(),
            d.spec.analog_of.into(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.2}", g.avg_degree()),
            max_deg.to_string(),
            format!("{scale:.0}x"),
            d.spec.s.to_string(),
            d.spec.t.to_string(),
        ]);
    }
    print!("{}", t.render());
    t.write_csv(results_dir().join("table2_datasets.csv")).unwrap();
}
