//! Ablation: dangling-node policy (DESIGN.md §6).
//!
//! The paper's math assumes a column-stochastic `Ãᵀ` — every node has an
//! out-edge. Real edge lists violate this; the builder's default patches
//! dangling nodes with self-loops, while `Keep` lets walk mass leak. This
//! binary quantifies the leak and its effect on TPA's accuracy so the
//! default policy choice is evidence-backed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpa_bench::harness::results_dir;
use tpa_core::{exact_rwr, CpiConfig, TpaIndex, TpaParams, Transition};
use tpa_eval::{metrics, seeds::sample_seeds, Stats, Table};
use tpa_graph::{DanglingPolicy, GraphBuilder, NodeId};

const N: usize = 4000;
const M: usize = 24_000;

fn main() {
    let params = TpaParams::new(5, 10);
    let cfg = CpiConfig::default();
    let mut table = Table::new(
        "Ablation: dangling-node policy (n=4000, ~10% dangling in input)",
        &["policy", "dangling_nodes", "rwr_mass", "tpa_l1_error_vs_own_exact"],
    );

    // Edge list in which ~10% of nodes have no out-edge.
    let mut rng = StdRng::seed_from_u64(0xda11);
    let sinks: Vec<bool> = (0..N).map(|_| rng.gen::<f64>() < 0.1).collect();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(M);
    while edges.len() < M {
        let u = rng.gen_range(0..N);
        let v = rng.gen_range(0..N);
        if u != v && !sinks[u] {
            edges.push((u as NodeId, v as NodeId));
        }
    }

    for (name, policy) in
        [("self-loop (default)", DanglingPolicy::SelfLoop), ("keep (leaky)", DanglingPolicy::Keep)]
    {
        let g = GraphBuilder::with_capacity(N, M)
            .dangling_policy(policy)
            .extend_edges(edges.iter().copied())
            .build();
        let t = Transition::new(&g);
        let index = TpaIndex::preprocess(&g, params);
        let seeds = sample_seeds(g.n(), 10, 0xda11);
        let mut masses = Vec::new();
        let mut errs = Vec::new();
        for &s in &seeds {
            let exact = exact_rwr(&g, s, &cfg);
            masses.push(exact.iter().sum::<f64>());
            errs.push(metrics::l1_error(&index.query(&t, s), &exact));
        }
        table.row(&[
            name.into(),
            g.dangling_nodes().len().to_string(),
            format!("{:.4}", Stats::from_samples(&masses).mean),
            format!("{:.4}", Stats::from_samples(&errs).mean),
        ]);
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("ablation_dangling.csv")).unwrap();
}
