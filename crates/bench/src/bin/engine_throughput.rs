//! Engine serving throughput: seeds/second across backend × batch size.
//!
//! The serving claim behind the `QueryEngine` layer: answering a batch of
//! B seeds through the fused block kernel shares one edge pass per CPI
//! iteration across all B lanes, so per-seed cost drops with the batch
//! size — while staying bit-identical to per-seed queries. This binary
//! measures it and reports the batched-vs-sequential speedup the serving
//! layer buys.
//!
//! Measurement note: every speedup is a ratio of *interleaved* runs
//! (baseline, batch, baseline, batch, …) over the same seeds, so shared
//! hosts with drifting clock speed or contended caches can't skew the
//! comparison.
//!
//! Output: ASCII table + `results/engine_throughput.csv`.

use std::sync::Arc;
use tpa_bench::harness::{load_dataset, results_dir};
use tpa_core::{QueryEngine, TpaIndex, TpaParams};
use tpa_eval::Table;
use tpa_graph::NodeId;

const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];
const ROUNDS: usize = 5;

fn main() {
    let d = load_dataset("slashdot-s");
    let g = &d.graph;
    eprintln!("[engine_throughput] slashdot-s: n={} m={}", g.n(), g.m());

    let params = TpaParams::new(d.spec.s, d.spec.t);
    let index = Arc::new(TpaIndex::preprocess(g, params));
    let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);

    // The baseline pins FrontierPolicy::Dense: this bench isolates the
    // *batching* lever (shared edge passes), and frontier-auto singles
    // would fold the sparse-frontier win into the denominator — see
    // `query_latency` for that axis. Batched lanes are dense either way.
    let dense = tpa_core::FrontierPolicy::Dense;
    let baseline = QueryEngine::sequential(g).with_index(Arc::clone(&index)).with_frontier(dense);
    let engines = [
        (
            "sequential",
            QueryEngine::sequential(g).with_index(Arc::clone(&index)).with_frontier(dense),
        ),
        (
            "parallel",
            QueryEngine::parallel(g, threads).with_index(Arc::clone(&index)).with_frontier(dense),
        ),
    ];

    let n = g.n();
    let seeds: Vec<NodeId> = (0..256).map(|i| ((i * 2654435761) % n) as NodeId).collect();

    let mut table = Table::new(
        format!("Engine throughput on slashdot-s (parallel = {threads} threads)"),
        &["backend", "batch", "seeds_per_sec", "speedup_vs_single_seq"],
    );
    let mut batch32_speedup = 0.0;

    for (name, engine) in &engines {
        for batch in BATCH_SIZES {
            // Interleave baseline and batched rounds; compare medians.
            let mut base_samples = Vec::with_capacity(ROUNDS);
            let mut batch_samples = Vec::with_capacity(ROUNDS);
            serve_singles(&baseline, &seeds); // warm-up
            serve_batched(engine, &seeds, batch);
            for _ in 0..ROUNDS {
                base_samples.push(serve_singles(&baseline, &seeds));
                batch_samples.push(serve_batched(engine, &seeds, batch));
            }
            let base = median(&mut base_samples);
            let per_seed = median(&mut batch_samples);
            let speedup = base / per_seed;
            if *name == "parallel" && batch == 32 {
                batch32_speedup = speedup;
            }
            table.row(&[
                name.to_string(),
                batch.to_string(),
                format!("{:.1}", 1.0 / per_seed),
                format!("{speedup:.2}x"),
            ]);
        }
    }

    print!("{}", table.render());
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    table.write_csv(dir.join("engine_throughput.csv")).unwrap();

    // The serving-layer acceptance bar: a 32-seed batch must beat 32
    // sequential single-seed queries by ≥ 2×.
    eprintln!(
        "[engine_throughput] 32-seed batch speedup: {batch32_speedup:.2}x {}",
        if batch32_speedup >= 2.0 { "(PASS, >= 2x)" } else { "(FAIL, < 2x)" }
    );
}

/// Seconds per seed answering every seed with its own single-seed plan
/// (the pre-engine serving pattern), results collected per 32 like a
/// request batch.
fn serve_singles(engine: &QueryEngine<'_>, seeds: &[NodeId]) -> f64 {
    let (_, dt) = tpa_eval::time(|| {
        for chunk in seeds.chunks(32) {
            let out: Vec<Vec<f64>> = chunk.iter().map(|&s| engine.query(s)).collect();
            std::hint::black_box(out);
        }
    });
    dt.as_secs_f64() / seeds.len() as f64
}

/// Seconds per seed answering the workload in `batch`-sized plans.
fn serve_batched(engine: &QueryEngine<'_>, seeds: &[NodeId], batch: usize) -> f64 {
    let (_, dt) = tpa_eval::time(|| {
        for chunk in seeds.chunks(batch) {
            let out = engine.query_batch(chunk);
            std::hint::black_box(out);
        }
    });
    dt.as_secs_f64() / seeds.len() as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}
