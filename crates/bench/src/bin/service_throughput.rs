//! Multi-threaded serving throughput: reader QPS against an
//! `Arc<RwrService>` with an edge-update stream in flight.
//!
//! Two measurements:
//!
//! 1. **Reader QPS** at 1/2/4 reader threads, first on a quiet service,
//!    then with a writer thread continuously applying update batches
//!    (each one publishing a new snapshot epoch). On a multi-core host
//!    reader QPS should scale with threads and stay close to the quiet
//!    numbers — the epoch swap never serializes readers behind the
//!    writer. (On a single-core host parallel scaling is physically
//!    impossible; the numbers are still recorded, and the verdict comes
//!    from the stall probe below.)
//!
//! 1b. **Publish latency** — writer-side `apply_updates` timings
//!    (p50/p99 plus epochs/sec). Every batch publishes a copy-on-write
//!    patch snapshot in `O(batch)`; the p99 stays flat in `n` because no
//!    publish ever rebuilds the CSR.
//! 2. **Stall probe** — the architectural difference the redesign
//!    exists for. The writer applies a batch and then runs a full index
//!    refresh (a re-preprocess, the most expensive publish). Readers on
//!    the epoch-swapped service keep answering from the previous epoch
//!    the whole time, so their worst-case request latency stays at
//!    normal-query scale. The pre-redesign architecture — a
//!    `Mutex<QueryEngine>`, the only way to share the old single-owner
//!    API across threads — blocks every reader for the entire refresh.
//!    The probe measures the worst reader-observed request latency
//!    under both architectures; the bar is that the mutex architecture
//!    stalls readers ≥ 2× longer than the service (in practice it is
//!    orders of magnitude).
//!
//! Output: ASCII table, `results/service_throughput.csv`, and
//! `BENCH_service.json`. Env knobs: `TPA_QUICK=1` for a small smoke
//! config, `TPA_SERVICE_N=<n>` to force one graph size,
//! `TPA_METRICS_OUT=<file>` to attach a metrics registry to the
//! service and write its Prometheus dump at exit (what the CI smoke
//! step scrapes with `tpa stats --metrics`).

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use tpa_bench::harness::results_dir;
use tpa_bench::report::{ns_to_secs, BenchReport};
use tpa_core::{
    IndexStalenessPolicy, QueryEngine, QueryRequest, RwrService, ServiceBuilder, TpaParams,
};
use tpa_eval::Table;
use tpa_graph::gen::{rmat, RmatConfig};
use tpa_graph::{CsrGraph, DynamicGraph, EdgeUpdate, NodeId, Permutation};
use tpa_obs::{Histogram, MetricsRegistry};

const PARAMS: TpaParams = TpaParams { c: 0.15, eps: 1e-9, s: 5, t: 10 };
const READER_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let quick = tpa_bench::harness::quick();
    let (n, m_target) = if let Some(n) =
        std::env::var("TPA_SERVICE_N").ok().and_then(|v| v.parse::<usize>().ok())
    {
        (n, 10 * n)
    } else if quick {
        (20_000, 200_000)
    } else {
        (200_000, 2_000_000)
    };
    let queries_per_thread = if quick { 40 } else { 120 };
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);

    let mut rng = StdRng::seed_from_u64(0x5e1f);
    let generated = rmat(n, m_target, RmatConfig::default(), &mut rng);
    let shuffle = random_permutation(n, &mut rng);
    let g = generated.permuted(&shuffle);
    let m = g.m();
    eprintln!("[service_throughput] R-MAT graph (labels shuffled): n={n} m={m}, {cores} core(s)");

    let metrics_out = std::env::var("TPA_METRICS_OUT").ok().filter(|p| !p.is_empty());
    let registry = metrics_out.as_ref().map(|_| Arc::new(MetricsRegistry::new()));
    let (service, dt) = tpa_eval::time(|| {
        let mut builder = ServiceBuilder::dynamic(DynamicGraph::new(g.clone()))
            .preprocess(PARAMS)
            .staleness(IndexStalenessPolicy { threshold: f64::INFINITY, auto_refresh: false });
        if let Some(reg) = &registry {
            builder = builder.metrics(Arc::clone(reg));
        }
        Arc::new(builder.build().expect("valid serving configuration"))
    });
    eprintln!(
        "[service_throughput] built + preprocessed in {}",
        tpa_eval::format_secs(dt.as_secs_f64())
    );

    // --- Measurement 1: reader QPS, quiet and with a writer in flight.
    let mut table = Table::new(
        format!("RwrService reader throughput on R-MAT n={n} m={m} (S={})", PARAMS.s),
        &["readers", "quiet_qps", "with_writer_qps", "epochs_seen"],
    );
    let mut qps_rows = Vec::new();
    let mut scaling_base = 0.0f64;
    let mut scaling_top = 0.0f64;
    for &readers in &READER_COUNTS {
        let quiet = run_readers(&service, readers, queries_per_thread, n, None);
        let with_writer = run_readers(&service, readers, queries_per_thread, n, Some(n));
        if readers == READER_COUNTS[0] {
            scaling_base = with_writer.qps;
        }
        if readers == *READER_COUNTS.last().unwrap() {
            scaling_top = with_writer.qps;
        }
        table.row(&[
            readers.to_string(),
            format!("{:.1}", quiet.qps),
            format!("{:.1}", with_writer.qps),
            with_writer.epochs_seen.to_string(),
        ]);
        qps_rows.push(format!(
            "    \"readers_{readers}\": {{\"quiet_qps\": {:.3}, \"with_writer_qps\": {:.3}, \
             \"epochs_seen\": {}}}",
            quiet.qps, with_writer.qps, with_writer.epochs_seen
        ));
    }
    let scaling = scaling_top / scaling_base.max(1e-12);

    // --- Measurement 1b: writer-side publish latency. Each
    // `apply_updates` call publishes a copy-on-write epoch snapshot —
    // O(batch) assembly, never a CSR rebuild — so the p99 should sit at
    // microsecond-to-millisecond scale regardless of n.
    let publish_rounds = if quick { 40 } else { 80 };
    let publish_hist = Histogram::new();
    let publish_started = std::time::Instant::now();
    for round in 0..publish_rounds {
        let (out, dt) = tpa_eval::time(|| service.apply_updates(&update_batch(round + 1000, n)));
        std::hint::black_box(out.unwrap().epoch);
        publish_hist.record_duration(dt);
    }
    let epochs_per_sec = publish_rounds as f64 / publish_started.elapsed().as_secs_f64();
    let publish_p50 = ns_to_secs(publish_hist.quantile(0.50));
    let publish_p99 = ns_to_secs(publish_hist.quantile(0.99));
    eprintln!(
        "[service_throughput] publish: {epochs_per_sec:.0} epochs/sec, p50 {} p99 {}",
        tpa_eval::format_secs(publish_p50),
        tpa_eval::format_secs(publish_p99),
    );

    // --- Measurement 2: the stall probe (service vs Mutex<QueryEngine>).
    let refresh_rounds = if quick { 2 } else { 3 };
    let service_stall = service_stall_probe(&service, n, refresh_rounds);
    let mutex_stall = mutex_engine_stall_probe(&g, n, refresh_rounds);
    let stall_ratio = mutex_stall.max_request / service_stall.max_request.max(1e-12);

    print!("{}", table.render());
    println!(
        "stall probe over {refresh_rounds} full index refreshes (refresh ≈ {}):\n  \
         epoch-swap service: worst reader request {}\n  \
         Mutex<QueryEngine> (old architecture): worst reader request {}\n  \
         stall ratio {stall_ratio:.1}x",
        tpa_eval::format_secs(service_stall.refresh_secs),
        tpa_eval::format_secs(service_stall.max_request),
        tpa_eval::format_secs(mutex_stall.max_request),
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    table.write_csv(dir.join("service_throughput.csv")).unwrap();

    // Verdict: the stall bar holds on any host; the scaling bar needs
    // real cores to be physically measurable.
    let stall_pass = stall_ratio >= 2.0;
    let scaling_evaluable = cores > *READER_COUNTS.last().unwrap();
    let scaling_pass = !scaling_evaluable || scaling >= 1.8;
    let verdict = if quick {
        "(smoke run, no bar)".to_string()
    } else {
        format!(
            "({}, bars: stall ratio >= 2x{})",
            if stall_pass && scaling_pass { "PASS" } else { "FAIL" },
            if scaling_evaluable {
                format!(", reader scaling >= 1.8x (measured {scaling:.2}x)")
            } else {
                format!("; scaling bar skipped on a {cores}-core host (measured {scaling:.2}x)")
            }
        )
    };

    BenchReport::new("service_throughput")
        .field("s", PARAMS.s.to_string())
        .field("t", PARAMS.t.to_string())
        .field("cores", cores.to_string())
        .field("graph", format!("{{\"generator\": \"rmat\", \"n\": {n}, \"m\": {m}}}"))
        .field("reader_qps", format!("{{\n{}\n  }}", qps_rows.join(",\n")))
        .field("reader_scaling_with_writer", format!("{scaling:.3}"))
        .field(
            "publish",
            format!(
                "{{\"epochs_per_sec\": {epochs_per_sec:.1}, \"p50_secs\": {publish_p50:.8}, \
                 \"p99_secs\": {publish_p99:.8}}}"
            ),
        )
        .field(
            "stall_probe",
            format!(
                "{{\"refresh_secs\": {:.6}, \"service_max_request_secs\": {:.6}, \
                 \"mutex_engine_max_request_secs\": {:.6}, \"stall_ratio\": {stall_ratio:.3}}}",
                service_stall.refresh_secs, service_stall.max_request, mutex_stall.max_request,
            ),
        )
        .write("BENCH_service.json");
    if let (Some(path), Some(reg)) = (&metrics_out, &registry) {
        std::fs::write(path, reg.render_prometheus()).unwrap();
        eprintln!("[service_throughput] wrote metrics dump to {path}");
    }
    eprintln!(
        "[service_throughput] reader scaling {scaling:.2}x, stall ratio {stall_ratio:.1}x {verdict}"
    );
}

struct ReaderRun {
    qps: f64,
    epochs_seen: usize,
}

/// `readers` threads each issue `queries_per_thread` indexed single-seed
/// requests; with `writer_pace: Some(n)` a writer thread concurrently
/// applies small batches (publishing epochs) until the readers finish.
fn run_readers(
    service: &Arc<RwrService>,
    readers: usize,
    queries_per_thread: usize,
    n: usize,
    writer: Option<usize>,
) -> ReaderRun {
    let done = Arc::new(AtomicBool::new(false));
    let start_epoch = service.epoch();
    let started = std::time::Instant::now();
    let total = readers * queries_per_thread;
    std::thread::scope(|scope| {
        if writer.is_some() {
            let service = Arc::clone(service);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut round = 0usize;
                // ord: Acquire pairs with the harness's Release store of the done flag
                while !done.load(Ordering::Acquire) {
                    service.apply_updates(&update_batch(round, n)).unwrap();
                    round += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
        }
        let mut handles = Vec::new();
        for r in 0..readers {
            let service = Arc::clone(service);
            handles.push(scope.spawn(move || {
                for q in 0..queries_per_thread {
                    let seed = ((r * 7919 + q * 613 + 29) % n) as NodeId;
                    let resp = service.submit(&QueryRequest::single(seed)).unwrap();
                    std::hint::black_box(&resp.result);
                }
            }));
        }
        for h in handles {
            h.join().expect("reader thread");
        }
        done.store(true, Ordering::Release); // ord: Release pairs with the reader's Acquire poll of the done flag
    });
    let secs = started.elapsed().as_secs_f64();
    ReaderRun {
        qps: total as f64 / secs.max(1e-12),
        epochs_seen: (service.epoch() - start_epoch) as usize + 1,
    }
}

struct StallProbe {
    max_request: f64,
    refresh_secs: f64,
}

/// Worst reader request latency on the epoch-swapped service while the
/// writer runs `rounds` full index refreshes.
fn service_stall_probe(service: &Arc<RwrService>, n: usize, rounds: usize) -> StallProbe {
    let done = Arc::new(AtomicBool::new(false));
    let mut refresh_secs = 0.0f64;
    let mut max_request = 0.0f64;
    std::thread::scope(|scope| {
        let reader = {
            let service = Arc::clone(service);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut worst = 0.0f64;
                let mut q = 0usize;
                // ord: Acquire pairs with the harness's Release store of the done flag
                while !done.load(Ordering::Acquire) {
                    let seed = ((q * 613 + 29) % n) as NodeId;
                    let (resp, dt) = tpa_eval::time(|| service.submit(&QueryRequest::single(seed)));
                    std::hint::black_box(&resp.unwrap().result);
                    worst = worst.max(dt.as_secs_f64());
                    q += 1;
                }
                worst
            })
        };
        for round in 0..rounds {
            service.apply_updates(&update_batch(round, n)).unwrap();
            let (_, dt) = tpa_eval::time(|| service.refresh_index().unwrap());
            refresh_secs += dt.as_secs_f64() / rounds as f64;
        }
        done.store(true, Ordering::Release); // ord: Release pairs with the reader's Acquire poll of the done flag
        max_request = reader.join().expect("reader thread");
    });
    StallProbe { max_request, refresh_secs }
}

/// The same probe against the pre-redesign architecture: one
/// `Mutex<QueryEngine>` shared by reader and writer, the writer holding
/// the lock across apply + refresh (the old API gives no other choice —
/// `apply_updates`/`refresh_index` need `&mut self`).
fn mutex_engine_stall_probe(g: &CsrGraph, n: usize, rounds: usize) -> StallProbe {
    let engine =
        Arc::new(Mutex::new(QueryEngine::dynamic(DynamicGraph::new(g.clone())).preprocess(PARAMS)));
    let done = Arc::new(AtomicBool::new(false));
    let mut max_request = 0.0f64;
    std::thread::scope(|scope| {
        let reader = {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut worst = 0.0f64;
                let mut q = 0usize;
                // ord: Acquire pairs with the harness's Release store of the done flag
                while !done.load(Ordering::Acquire) {
                    let seed = ((q * 613 + 29) % n) as NodeId;
                    let (scores, dt) = tpa_eval::time(|| engine.lock().unwrap().query(seed));
                    std::hint::black_box(&scores);
                    worst = worst.max(dt.as_secs_f64());
                    q += 1;
                }
                worst
            })
        };
        for round in 0..rounds {
            let mut e = engine.lock().unwrap();
            e.apply_updates(&update_batch(round, n)).unwrap();
            e.refresh_index();
        }
        done.store(true, Ordering::Release); // ord: Release pairs with the reader's Acquire poll of the done flag
        max_request = reader.join().expect("reader thread");
    });
    StallProbe { max_request, refresh_secs: 0.0 }
}

/// Deterministic small update batch for round `round`.
fn update_batch(round: usize, n: usize) -> Vec<EdgeUpdate> {
    let pick = |k: usize| ((round * 613 + k * 211 + 17) % n) as NodeId;
    vec![
        EdgeUpdate::Insert(pick(1), pick(2)),
        EdgeUpdate::Insert(pick(3), pick(4)),
        EdgeUpdate::Delete(pick(1), pick(2)),
    ]
}

/// Uniform random relabeling (Fisher–Yates) for the "as-ingested"
/// baseline.
fn random_permutation(n: usize, rng: &mut StdRng) -> Permutation {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    Permutation::from_new_to_old(ids)
}
