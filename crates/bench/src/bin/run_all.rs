//! Runs every experiment binary in sequence, regenerating all tables and
//! figures into `results/`. Honors the same environment knobs as the
//! individual binaries (`TPA_QUICK`, `TPA_SEEDS`, `TPA_BUDGET_MB`, …).

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "table2_datasets",
    "table3_errors",
    "fig1_performance",
    "fig3_density",
    "fig4_nonzeros",
    "fig6_block_structure",
    "fig7_recall",
    "fig8_effect_s",
    "fig9_effect_t",
    "ablation_structure",
    "ablation_models",
    "ablation_dangling",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary dir");
    let mut failures = Vec::new();

    let all: Vec<&str> = EXPERIMENTS
        .iter()
        .copied()
        .chain([
            "fig10_bepi",
            "spmv_kernels",
            "query_latency",
            "topk_latency",
            "service_throughput",
            "service_overload",
            "metrics_overhead",
        ])
        .collect();
    for name in all {
        let path = dir.join(name);
        eprintln!("\n===== running {name} =====");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[run_all] {name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("[run_all] {name} failed to start: {e} (did you build all bins?)");
                failures.push(name);
            }
        }
    }

    if failures.is_empty() {
        eprintln!("\n[run_all] all experiments completed; see results/");
    } else {
        eprintln!("\n[run_all] FAILED: {failures:?}");
        std::process::exit(1);
    }
}
