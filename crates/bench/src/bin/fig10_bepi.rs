//! Figure 10 (Appendix A): TPA vs BePI — preprocessed-data size,
//! preprocessing time and online time on every dataset.
//!
//! BePI is exact and, in the paper, fits every dataset into the 200 GB
//! machine; this comparison therefore runs without the memory budget used
//! for Fig. 1.

use tpa_baselines::MemoryBudget;
use tpa_bench::harness::{
    all_dataset_keys, build_method, ground_truth, load_dataset, query_seeds, results_dir,
    MethodKind,
};
use tpa_eval::{metrics, time, Stats, Table};

fn main() {
    let mut table = Table::new(
        "Fig 10: TPA vs BePI (index size, preprocess time, online time)",
        &["dataset", "method", "index_mib", "preprocess_s", "online_s", "l1_error"],
    );

    for key in all_dataset_keys() {
        let d = load_dataset(key);
        eprintln!("[fig10] {key}");
        let seeds = query_seeds(&d);
        let truths: Vec<Vec<f64>> = seeds.iter().map(|&s| ground_truth(&d, s)).collect();

        for kind in [MethodKind::Tpa, MethodKind::BePi] {
            let built = build_method(kind, &d, MemoryBudget::unlimited());
            let method = match built.method {
                Some(m) => m,
                None => {
                    table.row(&[
                        key.into(),
                        built.label.into(),
                        "FAIL".into(),
                        "FAIL".into(),
                        "FAIL".into(),
                        format!("{:?}", built.error),
                    ]);
                    continue;
                }
            };
            let mut times = Vec::new();
            let mut errs = Vec::new();
            for (i, &s) in seeds.iter().enumerate() {
                let (scores, dt) = time(|| method.query(s));
                times.push(dt);
                errs.push(metrics::l1_error(&scores, &truths[i]));
            }
            table.row(&[
                key.into(),
                built.label.into(),
                format!("{:.3}", method.index_bytes() as f64 / (1 << 20) as f64),
                format!("{:.4}", built.preprocess.map(|d| d.as_secs_f64()).unwrap_or(0.0)),
                format!("{:.5}", Stats::from_durations(&times).mean),
                format!("{:.6}", Stats::from_samples(&errs).mean),
            ]);
        }
    }

    print!("{}", table.render());
    table.write_csv(results_dir().join("fig10_bepi.csv")).unwrap();
}
