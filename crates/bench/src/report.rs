//! Shared `BENCH_*.json` envelope.
//!
//! Every experiment binary drops a small JSON trajectory record next to
//! the repo root so later PRs can diff performance across commits. This
//! module owns the envelope those files share — a schema version, the
//! bench name, the commit the numbers were measured at, and a host
//! stamp — so the records are comparable without each binary
//! hand-rolling (and drifting on) the metadata fields.
//!
//! Bodies stay bench-specific: callers append raw JSON values with
//! [`BenchReport::field`] in the order they should appear.

use std::path::Path;

/// Version of the `BENCH_*.json` envelope. Bump when envelope keys
/// change meaning; bench-specific body fields are not covered.
pub const SCHEMA_VERSION: u32 = 1;

/// Builder for one `BENCH_<name>.json` record.
///
/// Keys are emitted in insertion order after the envelope
/// (`schema_version`, `bench`, `commit`, `host`). Values are raw JSON —
/// the caller formats numbers/objects; this type only assembles the
/// document.
pub struct BenchReport {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a record for the bench called `name`.
    pub fn new(name: &str) -> Self {
        BenchReport { name: name.to_string(), fields: Vec::new() }
    }

    /// Appends `key` with a raw JSON `value` (caller-formatted).
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Renders the full document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"commit\": \"{}\",\n", commit_hash()));
        out.push_str(&format!("  \"host\": {},\n", host_stamp()));
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n}\n");
        out
    }

    /// Writes the record to `path` (conventionally `BENCH_<name>.json`
    /// in the repo root) and logs the write to stderr.
    pub fn write(&self, path: impl AsRef<Path>) {
        let path = path.as_ref();
        std::fs::write(path, self.render()).unwrap();
        eprintln!("[{}] wrote {}", self.name, path.display());
    }
}

/// The commit the numbers were measured at: `git rev-parse HEAD`, or
/// `"unknown"` outside a git checkout.
pub fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Host stamp as a raw JSON object: hostname, logical cores, os/arch.
pub fn host_stamp() -> String {
    let hostname = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::process::Command::new("hostname")
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    format!(
        "{{\"hostname\": \"{hostname}\", \"cores\": {cores}, \"os\": \"{}\", \"arch\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Nanoseconds (histogram quantiles) to seconds.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_fields_present_and_ordered() {
        let doc =
            BenchReport::new("demo").field("alpha", "1").field("nested", "{\"x\": 2.5}").render();
        let order = ["schema_version", "bench", "commit", "host", "alpha", "nested"];
        let mut last = 0;
        for key in order {
            let pos = doc.find(&format!("\"{key}\"")).unwrap_or_else(|| panic!("missing {key}"));
            assert!(pos > last || key == "schema_version", "{key} out of order");
            last = pos;
        }
        assert!(doc.contains("\"bench\": \"demo\""));
        assert!(doc.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(doc.trim_end().ends_with('}'));
    }

    #[test]
    fn host_stamp_is_json_object() {
        let stamp = host_stamp();
        assert!(stamp.starts_with('{') && stamp.ends_with('}'));
        assert!(stamp.contains("\"cores\""));
    }
}
