//! Accuracy metrics used in the paper's evaluation: L1 error (Table III,
//! Figs. 6/8/9) and recall of the exact top-k (Fig. 7), plus rank
//! correlations for the extended analyses.

/// `‖a − b‖₁`.
pub fn l1_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// `‖a − b‖₂`.
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// `max_i |a_i − b_i|`.
pub fn max_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Indices of the `k` largest scores, descending; ties broken by lower
/// index (deterministic).
///
/// ```
/// let ranked = tpa_eval::metrics::top_k(&[0.1, 0.9, 0.4], 2);
/// assert_eq!(ranked, vec![1, 2]);
/// ```
pub fn top_k(scores: &[f64], k: usize) -> Vec<u32> {
    // One ranking implementation workspace-wide: delegate to the engine's
    // partial selection so eval-side recall and engine-served rankings
    // can never drift apart.
    tpa_core::top_k_scored(scores, k).into_iter().map(|(v, _)| v).collect()
}

/// Recall of the approximate top-k against the exact top-k:
/// `|approx ∩ exact| / k` — the y-axis of Fig. 7.
pub fn recall_at_k(exact_scores: &[f64], approx_scores: &[f64], k: usize) -> f64 {
    let exact: std::collections::HashSet<u32> = top_k(exact_scores, k).into_iter().collect();
    let hit = top_k(approx_scores, k).into_iter().filter(|v| exact.contains(v)).count();
    hit as f64 / k.min(exact_scores.len()) as f64
}

/// Spearman rank correlation between two score vectors.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

/// Average ranks (ties get the mean of their positions).
fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).unwrap());
    let mut r = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Kendall rank correlation (τ-a) restricted to the union of both top-k
/// sets — the pairwise-order agreement of the rankings users actually see.
/// `O(k²)` pairs; intended for k ≤ a few thousand.
pub fn kendall_tau_top_k(exact: &[f64], approx: &[f64], k: usize) -> f64 {
    let mut nodes = top_k(exact, k);
    nodes.extend(top_k(approx, k));
    nodes.sort_unstable();
    nodes.dedup();
    let n = nodes.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (nodes[i] as usize, nodes[j] as usize);
            let de = exact[a] - exact[b];
            let da = approx[a] - approx[b];
            let prod = de * da;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / total
}

/// Top-k overlap curve: `overlap[i]` = |exact top-(i+1) ∩ approx
/// top-(i+1)| / (i+1) for `i < k`. A strictly richer view than a single
/// recall@k number.
pub fn overlap_curve(exact: &[f64], approx: &[f64], k: usize) -> Vec<f64> {
    let e = top_k(exact, k);
    let a = top_k(approx, k);
    let k = e.len().min(a.len());
    let mut in_e = std::collections::HashSet::new();
    let mut in_a = std::collections::HashSet::new();
    let mut shared = 0usize;
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        // Count the new intersections contributed by the i-th element of
        // each ranking (one shared element when they coincide).
        if e[i] == a[i] {
            shared += 1;
        } else {
            if in_a.contains(&e[i]) {
                shared += 1;
            }
            if in_e.contains(&a[i]) {
                shared += 1;
            }
        }
        in_e.insert(e[i]);
        in_a.insert(a[i]);
        out.push(shared as f64 / (i + 1) as f64);
    }
    out
}

/// Normalized discounted cumulative gain at `k`, with the exact scores as
/// graded relevance.
pub fn ndcg_at_k(exact_scores: &[f64], approx_scores: &[f64], k: usize) -> f64 {
    let gain = |order: &[u32]| -> f64 {
        order
            .iter()
            .enumerate()
            .map(|(i, &v)| exact_scores[v as usize] / ((i + 2) as f64).log2())
            .sum()
    };
    let ideal = gain(&top_k(exact_scores, k));
    if ideal == 0.0 {
        return 1.0;
    }
    gain(&top_k(approx_scores, k)) / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_norm_errors() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 7.0];
        assert_eq!(l1_error(&a, &b), 6.0);
        assert_eq!(l2_error(&a, &b), (4.0f64 + 16.0).sqrt());
        assert_eq!(max_error(&a, &b), 4.0);
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let scores = [0.1, 0.5, 0.5, 0.9, 0.0];
        assert_eq!(top_k(&scores, 3), vec![3, 1, 2]);
        assert_eq!(top_k(&scores, 10).len(), 5);
    }

    #[test]
    fn recall_perfect_and_partial() {
        let exact = [0.9, 0.8, 0.7, 0.1, 0.0];
        assert_eq!(recall_at_k(&exact, &exact, 3), 1.0);
        let approx = [0.9, 0.0, 0.7, 0.8, 0.0]; // swapped node 1 ↔ 3
        assert!((recall_at_k(&exact, &approx, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_bounds() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman_rho(&a, &a) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&a, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [2.0, 2.0, 4.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_perfect_is_one() {
        let exact = [0.5, 0.3, 0.2, 0.0];
        assert!((ndcg_at_k(&exact, &exact, 3) - 1.0).abs() < 1e-12);
        let worst = [0.0, 0.2, 0.3, 0.5];
        assert!(ndcg_at_k(&exact, &worst, 3) < 1.0);
    }

    #[test]
    fn kendall_bounds_and_identity() {
        let exact = [0.9, 0.7, 0.5, 0.3, 0.1];
        assert!((kendall_tau_top_k(&exact, &exact, 5) - 1.0).abs() < 1e-12);
        let reversed = [0.1, 0.3, 0.5, 0.7, 0.9];
        assert!((kendall_tau_top_k(&exact, &reversed, 5) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_partial_disagreement() {
        let exact = [0.9, 0.7, 0.5];
        let approx = [0.9, 0.5, 0.7]; // one swapped pair of three
        let tau = kendall_tau_top_k(&exact, &approx, 3);
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn overlap_curve_identity_is_all_ones() {
        let exact = [0.5, 0.4, 0.3, 0.2, 0.1];
        let c = overlap_curve(&exact, &exact, 4);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn overlap_curve_detects_disjoint_prefix() {
        let exact = [1.0, 0.9, 0.0, 0.0];
        let approx = [0.0, 0.0, 1.0, 0.9];
        let c = overlap_curve(&exact, &approx, 2);
        assert!(c.iter().all(|&v| v == 0.0), "{c:?}");
    }
}
