//! Deterministic sampling of query seed nodes.
//!
//! Every accuracy/timing number in the paper is "the average value for 30
//! random seed nodes" (§IV-A). This module fixes that sampling so repeated
//! runs produce identical tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's seed-count setting.
pub const PAPER_SEED_COUNT: usize = 30;

/// Draws `count` distinct node ids from `0..n`, deterministically in
/// `rng_seed`. For `count ≥ n` every node is returned (in order).
pub fn sample_seeds(n: usize, count: usize, rng_seed: u64) -> Vec<u32> {
    assert!(n > 0, "graph must have nodes");
    if count >= n {
        return (0..n as u32).collect();
    }
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut chosen = std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let v = rng.gen_range(0..n) as u32;
        if chosen.insert(v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_and_in_range() {
        let s = sample_seeds(1000, 30, 7);
        assert_eq!(s.len(), 30);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(s.iter().all(|&v| (v as usize) < 1000));
    }

    #[test]
    fn deterministic() {
        assert_eq!(sample_seeds(500, 30, 42), sample_seeds(500, 30, 42));
        assert_ne!(sample_seeds(500, 30, 42), sample_seeds(500, 30, 43));
    }

    #[test]
    fn saturates_small_graphs() {
        assert_eq!(sample_seeds(5, 30, 1), vec![0, 1, 2, 3, 4]);
    }
}
