//! Result tables: aligned ASCII rendering for the terminal and CSV output
//! for `results/` so every figure/table of the paper has a machine-readable
//! artifact.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-oriented results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned ASCII form.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let parts: Vec<String> =
                cells.iter().enumerate().map(|(i, c)| format!("{:<w$}", c, w = width[i])).collect();
            parts.join(" | ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &width));
        let total: usize = width.iter().sum::<usize>() + 3 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &width));
        }
        out
    }

    /// Renders CSV (RFC-4180-style quoting for cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["x", "1"]).row_str(&["longer-name", "2.5"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name | 2.5"));
        // header padded to the widest cell
        assert!(s.contains("name        | value"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_str(&["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_ragged_rows() {
        Table::new("", &["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("tpa-eval-table-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("", &["k"]);
        t.row_str(&["v"]);
        let path = dir.join("nested/out.csv");
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
