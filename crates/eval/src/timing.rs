//! Wall-clock measurement helpers (the unit of Figs. 1(b), 1(c), 8, 10).

use std::time::{Duration, Instant};

/// Runs `f` once, returning its result and the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Summary statistics over repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (lower of the middle pair for even lengths).
    pub median: f64,
}

impl Stats {
    /// Computes stats from raw samples. Panics on empty input.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "need at least one sample");
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            median: sorted[(sorted.len() - 1) / 2],
        }
    }

    /// Stats over durations, in seconds.
    pub fn from_durations(ds: &[Duration]) -> Self {
        let xs: Vec<f64> = ds.iter().map(Duration::as_secs_f64).collect();
        Self::from_samples(&xs)
    }
}

/// Formats a byte count with binary prefixes (`12.3 MiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Formats seconds adaptively (`123 µs`, `4.5 ms`, `6.78 s`).
pub fn format_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.0} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn stats_known_values() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_secs(0.0000123), "12 µs");
        assert_eq!(format_secs(0.0123), "12.30 ms");
        assert_eq!(format_secs(1.5), "1.50 s");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn stats_reject_empty() {
        Stats::from_samples(&[]);
    }
}
