//! # tpa-eval — measurement substrate for the TPA reproduction
//!
//! Pure measurement utilities shared by the experiment binaries:
//!
//! * [`metrics`] — L1/L2/max errors, top-k recall (Fig. 7), Spearman, NDCG.
//! * [`timing`] — wall-clock helpers and summary [`timing::Stats`].
//! * [`table`] — aligned ASCII + CSV result tables written to `results/`.
//! * [`seeds`] — deterministic query-seed sampling (the paper averages
//!   each measurement over 30 random seed nodes).

#![warn(missing_docs)]

pub mod metrics;
pub mod seeds;
pub mod table;
pub mod timing;

pub use table::Table;
pub use timing::{format_bytes, format_secs, time, Stats};
