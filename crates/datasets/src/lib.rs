//! # tpa-datasets — synthetic analogs of the paper's Table II datasets
//!
//! The paper evaluates on seven KONECT graphs up to Friendster
//! (68 M nodes / 2.6 B edges). This environment has no network access, so
//! each dataset is replaced by a deterministic synthetic analog, scaled
//! down 10×–2000× while preserving:
//!
//! * the original **average degree** (the per-iteration CPI cost driver),
//! * a **heavy-tailed degree distribution** (what the stranger
//!   approximation exploits),
//! * **block-wise community structure** for the social networks (what the
//!   neighbor approximation exploits): LFR-lite with mixing parameter μ;
//!   the hyperlink graphs (Google, WikiLink) use R-MAT.
//!
//! The paper's per-dataset `S`/`T` values (Table II) are carried over
//! unchanged. Generation is deterministic per dataset key, and graphs are
//! cached in-process and optionally on disk as binary snapshots.

#![warn(missing_docs)]

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use tpa_graph::gen::{lfr_lite, rmat, LfrConfig, RmatConfig};
use tpa_graph::CsrGraph;

/// Which generator family backs a dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Generator {
    /// LFR-lite: power-law degrees + planted communities (social networks).
    LfrLite {
        /// Mixing parameter μ (fraction of inter-community edges).
        mu: f64,
        /// Edge reciprocity (fraction of edges with a reverse partner).
        reciprocity: f64,
    },
    /// R-MAT recursive-matrix generator (hyperlink networks).
    Rmat,
}

/// Static description of one synthetic dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Registry key, e.g. `"slashdot-s"`.
    pub key: &'static str,
    /// The Table II graph this stands in for.
    pub analog_of: &'static str,
    /// Node count of the original graph (for the scale-factor column).
    pub original_nodes: usize,
    /// Edge count of the original graph.
    pub original_edges: usize,
    /// Nodes in the synthetic analog.
    pub nodes: usize,
    /// Distinct directed edges in the synthetic analog.
    pub edges: usize,
    /// Paper's `S` (start of neighbor approximation) for this graph.
    pub s: usize,
    /// Paper's `T` (start of stranger approximation) for this graph.
    pub t: usize,
    /// Generator family.
    pub generator: Generator,
    /// RNG seed (fixed per dataset for bit-reproducible tables).
    pub seed: u64,
}

impl DatasetSpec {
    /// A copy of the spec scaled down by `factor` (for quick runs / CI).
    pub fn scaled_down(&self, factor: usize) -> DatasetSpec {
        let mut s = *self;
        s.nodes = (s.nodes / factor).max(64);
        s.edges = (s.edges / factor).max(4 * s.nodes);
        s
    }
}

/// All seven Table II analogs, ordered as in the paper (small → large).
pub const DATASETS: [DatasetSpec; 7] = [
    DatasetSpec {
        key: "slashdot-s",
        analog_of: "Slashdot",
        original_nodes: 82_144,
        original_edges: 549_202,
        nodes: 8_214,
        edges: 54_920,
        s: 5,
        t: 15,
        generator: Generator::LfrLite { mu: 0.25, reciprocity: 0.8 },
        seed: 0x51a5_bd07,
    },
    DatasetSpec {
        key: "google-s",
        analog_of: "Google",
        original_nodes: 875_713,
        original_edges: 5_105_039,
        nodes: 17_514,
        edges: 102_100,
        s: 5,
        t: 20,
        generator: Generator::Rmat,
        seed: 0x6006_1e00,
    },
    DatasetSpec {
        key: "pokec-s",
        analog_of: "Pokec",
        original_nodes: 1_632_803,
        original_edges: 30_622_564,
        nodes: 16_328,
        edges: 306_200,
        s: 5,
        t: 10,
        generator: Generator::LfrLite { mu: 0.18, reciprocity: 0.75 },
        seed: 0x90ce_c001,
    },
    DatasetSpec {
        key: "livejournal-s",
        analog_of: "LiveJournal",
        original_nodes: 4_847_571,
        original_edges: 68_475_391,
        nodes: 24_238,
        edges: 342_377,
        s: 5,
        t: 10,
        generator: Generator::LfrLite { mu: 0.25, reciprocity: 0.7 },
        seed: 0x11e0_a21b,
    },
    DatasetSpec {
        key: "wikilink-s",
        analog_of: "WikiLink",
        original_nodes: 12_150_976,
        original_edges: 378_142_420,
        nodes: 24_302,
        edges: 756_200,
        s: 5,
        t: 6,
        generator: Generator::Rmat,
        seed: 0x3121_1111,
    },
    DatasetSpec {
        key: "twitter-s",
        analog_of: "Twitter",
        original_nodes: 41_652_230,
        original_edges: 1_468_365_182,
        nodes: 41_652,
        edges: 1_468_300,
        s: 4,
        t: 6,
        generator: Generator::LfrLite { mu: 0.35, reciprocity: 0.4 },
        seed: 0x7317_7e50,
    },
    DatasetSpec {
        key: "friendster-s",
        analog_of: "Friendster",
        original_nodes: 68_349_466,
        original_edges: 2_586_147_869,
        nodes: 34_175,
        edges: 1_293_000,
        s: 4,
        t: 20,
        generator: Generator::LfrLite { mu: 0.25, reciprocity: 0.8 },
        seed: 0xf21e_0d57,
    },
];

/// Looks up a dataset spec by key.
pub fn spec(key: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.key == key)
}

/// A generated dataset: the graph plus, for LFR-lite graphs, the planted
/// community assignment (used by the community-search example).
#[derive(Clone)]
pub struct Dataset {
    /// The spec this was generated from.
    pub spec: DatasetSpec,
    /// The graph.
    pub graph: Arc<CsrGraph>,
    /// Planted community per node (LFR-lite only).
    pub communities: Option<Arc<Vec<u32>>>,
}

/// Generates a dataset from its spec (deterministic; no caching).
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    match spec.generator {
        Generator::LfrLite { mu, reciprocity } => {
            let out = lfr_lite(
                LfrConfig {
                    n: spec.nodes,
                    m: spec.edges,
                    mu,
                    degree_exponent: 2.5,
                    community_exponent: 2.0,
                    min_community: 20,
                    max_community: (spec.nodes / 20).max(40),
                    reciprocity,
                },
                &mut rng,
            );
            Dataset {
                spec: *spec,
                graph: Arc::new(out.graph),
                communities: Some(Arc::new(out.communities)),
            }
        }
        Generator::Rmat => {
            let g = rmat(spec.nodes, spec.edges, RmatConfig::default(), &mut rng);
            Dataset { spec: *spec, graph: Arc::new(g), communities: None }
        }
    }
}

/// Process-wide dataset cache so benches and examples generate each graph
/// once per run.
static CACHE: Mutex<Option<HashMap<&'static str, Dataset>>> = Mutex::new(None);

/// Generates (or reuses from the in-process cache) the dataset for `key`.
/// Panics on an unknown key — dataset keys are compile-time constants.
pub fn load(key: &str) -> Dataset {
    let spec = spec(key).unwrap_or_else(|| panic!("unknown dataset key {key}"));
    let mut cache = CACHE.lock();
    let map = cache.get_or_insert_with(HashMap::new);
    if let Some(d) = map.get(spec.key) {
        return d.clone();
    }
    let d = generate(spec);
    map.insert(spec.key, d.clone());
    d
}

/// Loads via an on-disk snapshot cache (generates and writes it on a miss).
/// Community labels are not persisted — only the graph.
pub fn load_with_disk_cache(spec: &DatasetSpec, dir: &Path) -> std::io::Result<Dataset> {
    let path = dir.join(format!("{}.tpagraph", spec.key));
    if path.exists() {
        match tpa_graph::io::read_snapshot_file(&path) {
            Ok(g) => return Ok(Dataset { spec: *spec, graph: Arc::new(g), communities: None }),
            Err(_) => {
                // Stale/corrupt cache: fall through and regenerate.
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    let d = generate(spec);
    std::fs::create_dir_all(dir)?;
    tpa_graph::io::write_snapshot_file(&d.graph, &path)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seven_datasets_in_paper_order() {
        assert_eq!(DATASETS.len(), 7);
        let keys: Vec<_> = DATASETS.iter().map(|d| d.key).collect();
        assert_eq!(
            keys,
            vec![
                "slashdot-s",
                "google-s",
                "pokec-s",
                "livejournal-s",
                "wikilink-s",
                "twitter-s",
                "friendster-s"
            ]
        );
    }

    #[test]
    fn specs_preserve_paper_s_t() {
        // Table II values.
        assert_eq!(spec("slashdot-s").unwrap().s, 5);
        assert_eq!(spec("slashdot-s").unwrap().t, 15);
        assert_eq!(spec("friendster-s").unwrap().s, 4);
        assert_eq!(spec("friendster-s").unwrap().t, 20);
        assert_eq!(spec("twitter-s").unwrap().t, 6);
    }

    #[test]
    fn average_degree_matches_original() {
        for d in &DATASETS {
            let orig = d.original_edges as f64 / d.original_nodes as f64;
            let ours = d.edges as f64 / d.nodes as f64;
            let rel = (orig - ours).abs() / orig;
            assert!(rel < 0.05, "{}: avg degree {ours:.2} vs original {orig:.2}", d.key);
        }
    }

    #[test]
    fn generate_smallest_dataset() {
        let d = generate(spec("slashdot-s").unwrap());
        assert_eq!(d.graph.n(), 8_214);
        assert!(d.graph.m() >= 54_000, "m = {}", d.graph.m());
        assert!(d.communities.is_some());
        assert!(d.graph.validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec("slashdot-s").unwrap().scaled_down(10);
        let a = generate(&s);
        let b = generate(&s);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn in_process_cache_returns_same_arc() {
        let a = load("slashdot-s");
        let b = load("slashdot-s");
        assert!(Arc::ptr_eq(&a.graph, &b.graph));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join("tpa-dataset-cache-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec("slashdot-s").unwrap().scaled_down(20);
        let first = load_with_disk_cache(&s, &dir).unwrap();
        let second = load_with_disk_cache(&s, &dir).unwrap();
        assert_eq!(*first.graph, *second.graph);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scaled_down_keeps_sane_shape() {
        let s = spec("twitter-s").unwrap().scaled_down(100);
        assert!(s.nodes >= 64);
        assert!(s.edges >= 4 * s.nodes);
    }
}
