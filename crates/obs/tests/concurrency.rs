//! Registry correctness under contention, plus the quantile error
//! contract as a property.
//!
//! The whole point of the lock-free registry is that concurrent
//! recording loses nothing: counters land every increment, histogram
//! shards conserve every sample, and get-or-create registration is
//! idempotent across racing threads. The hammer here checks the totals
//! *exactly* — any relaxed-ordering mistake that drops or double-counts
//! an event shows up as an off-by-N, not a flaky tolerance.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tpa_obs::{Histogram, MetricsRegistry, Unit};

const THREADS: u64 = 8;
const OPS: u64 = 20_000;

/// `THREADS × OPS` increments and records from racing threads, with a
/// reader thread snapshotting mid-flight. Totals must be exact at the
/// end; mid-race snapshots must never overshoot.
#[test]
fn hammer_conserves_every_sample() {
    let reg = Arc::new(MetricsRegistry::new());
    let hist = reg.histogram("hammer_latency", "hammer samples", Unit::Nanoseconds);
    let total = THREADS * OPS;
    let done = Arc::new(AtomicBool::new(false));

    // Reader races the writers: a snapshot taken mid-run merges shards
    // that are still advancing, so it may be slightly torn across
    // fields — but it can never overshoot what has been recorded, and
    // bucket counts can never exceed the eventual total.
    let reader = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                assert!(snap.count <= total, "count overshot mid-race");
                let bucket_sum: u64 = snap.buckets.iter().sum();
                assert!(bucket_sum <= total, "bucket sum overshot mid-race");
                assert!(snap.max < total, "max outside recorded domain");
                snapshots += 1;
            }
            snapshots
        })
    };

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..OPS {
                    // Get-or-create on every iteration: racing
                    // registration must keep resolving to the same
                    // underlying counter.
                    reg.counter("hammer_ops_total", "ops").inc();
                    hist.record(t * OPS + i);
                }
            });
        }
    });
    done.store(true, Ordering::Release);
    assert!(reader.join().expect("reader thread") > 0);

    // Quiesced: conservation is exact.
    assert_eq!(reg.counter("hammer_ops_total", "ops").get(), total);
    let snap = hist.snapshot();
    assert_eq!(snap.count, total, "histogram dropped or double-counted samples");
    assert_eq!(snap.buckets.iter().sum::<u64>(), total, "bucket counts not conserved");
    assert_eq!(snap.sum, total * (total - 1) / 2, "sample sum not conserved");
    assert_eq!(snap.max, total - 1);
}

mod quantile_contract {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The reported quantile is an upper estimate within one
        /// sub-bucket of the true nearest-rank sample: for any sample
        /// set and any `q`, `truth ≤ estimate ≤ truth·(1 + 1/8) + 1`
        /// (exact below 16 by construction).
        #[test]
        fn quantile_brackets_true_nearest_rank(
            values in collection::vec(0u64..=1 << 48, 1..400),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let n = sorted.len() as u64;
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = sorted[(rank - 1) as usize];
            let est = h.quantile(q);
            prop_assert!(est >= truth, "estimate {est} below true quantile {truth}");
            prop_assert!(
                est <= truth + truth / 8 + 1,
                "estimate {est} beyond one sub-bucket of {truth}"
            );
        }

        /// Moments survive any workload: count, sum, and max match the
        /// recorded samples exactly.
        #[test]
        fn moments_are_exact(values in collection::vec(0u64..=1 << 40, 0..400)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let snap = h.snapshot();
            prop_assert_eq!(snap.count, values.len() as u64);
            prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
            prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
        }
    }
}
