//! Text exposition (Prometheus + JSON) and the Prometheus validator.

use crate::registry::{MetricsRegistry, SampleValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantiles exported for every histogram family: the value, its
/// Prometheus `quantile` label, and its JSON key.
const QUANTILES: [(f64, &str, &str); 3] =
    [(0.5, "0.5", "p50"), (0.9, "0.9", "p90"), (0.99, "0.99", "p99")];

impl MetricsRegistry {
    /// Renders the registry in Prometheus text exposition format.
    /// Histograms are exported as `summary` families (p50/p90/p99 +
    /// `_sum`/`_count`) rather than 496 `le` buckets — the fixed-bucket
    /// detail stays available through
    /// [`MetricsRegistry::snapshot`] / [`crate::HistogramSnapshot`].
    pub fn render_prometheus(&self) -> String {
        let samples = self.snapshot();
        let mut out = String::new();
        let mut seen_header: Vec<String> = Vec::new();
        for s in &samples {
            if !seen_header.contains(&s.name) {
                seen_header.push(s.name.clone());
                let kind = match s.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(..) => "summary",
                };
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, label_set(&s.labels, None), v);
                }
                SampleValue::Gauge(v) => {
                    let _ =
                        writeln!(out, "{}{} {}", s.name, label_set(&s.labels, None), fmt_f64(*v));
                }
                SampleValue::Histogram(h, unit) => {
                    let scale = unit.scale();
                    for (q, qs, _) in QUANTILES {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            s.name,
                            label_set(&s.labels, Some(qs)),
                            fmt_f64(h.quantile(q) as f64 * scale)
                        );
                    }
                    let labels = label_set(&s.labels, None);
                    let _ =
                        writeln!(out, "{}_sum{} {}", s.name, labels, fmt_f64(h.sum as f64 * scale));
                    let _ = writeln!(out, "{}_count{} {}", s.name, labels, h.count);
                }
            }
        }
        out
    }

    /// Renders the registry as a JSON array, one object per series.
    /// Histograms carry `count`, `sum`, `max`, `mean`, and the exported
    /// quantiles, all pre-scaled to the series' base unit.
    pub fn render_json(&self) -> String {
        let samples = self.snapshot();
        let mut out = String::from("[\n");
        for (i, s) in samples.iter().enumerate() {
            let sep = if i + 1 == samples.len() { "" } else { "," };
            out.push_str("  {");
            let _ = write!(out, "\"name\": {}, ", json_str(&s.name));
            out.push_str("\"labels\": {");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                let sep = if j + 1 == s.labels.len() { "" } else { ", " };
                let _ = write!(out, "{}: {}{}", json_str(k), json_str(v), sep);
            }
            out.push_str("}, ");
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, "\"type\": \"counter\", \"value\": {v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, "\"type\": \"gauge\", \"value\": {}", fmt_f64(*v));
                }
                SampleValue::Histogram(h, unit) => {
                    let scale = unit.scale();
                    let _ = write!(
                        out,
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                         \"mean\": {}",
                        h.count,
                        fmt_f64(h.sum as f64 * scale),
                        fmt_f64(h.max as f64 * scale),
                        fmt_f64(h.mean() * scale)
                    );
                    for (q, _, key) in QUANTILES {
                        let _ =
                            write!(out, ", \"{}\": {}", key, fmt_f64(h.quantile(q) as f64 * scale));
                    }
                }
            }
            let _ = writeln!(out, "}}{sep}");
        }
        out.push_str("]\n");
        out
    }
}

fn label_set(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float so Prometheus and JSON parsers both accept it
/// (finite decimal, no trailing garbage; non-finite values become 0).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:e}")
    }
}

/// One metric family recovered from a Prometheus text dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PromFamily {
    /// Declared type (`counter`, `gauge`, `summary`, …), empty when the
    /// family appeared without a `# TYPE` line.
    pub kind: String,
    /// Number of sample lines in the family (including `_sum`/`_count`
    /// satellites for summaries).
    pub samples: usize,
}

/// A parsed Prometheus text dump: family name → [`PromFamily`].
#[derive(Clone, Debug, Default)]
pub struct PromDump {
    /// Families keyed by base name (`_sum`/`_count` suffixes fold into
    /// their summary family).
    pub families: BTreeMap<String, PromFamily>,
}

impl PromDump {
    /// True when the dump contains the family (by base name).
    pub fn has_family(&self, name: &str) -> bool {
        self.families.contains_key(name)
    }

    /// Total sample lines parsed.
    pub fn total_samples(&self) -> usize {
        self.families.values().map(|f| f.samples).sum()
    }
}

/// Parses and validates a Prometheus text exposition. Returns the
/// family table, or a message naming the first malformed line. Shared
/// by `tpa stats` and the CI smoke step, so "the dump doesn't parse"
/// fails the same way everywhere.
pub fn parse_prometheus(text: &str) -> Result<PromDump, String> {
    let mut dump = PromDump::default();
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(format!("line {lineno}: malformed TYPE line"));
            };
            declared.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, rest) =
            split_name(line).ok_or_else(|| format!("line {lineno}: no metric name in {line:?}"))?;
        let rest = parse_labels(rest).map_err(|e| format!("line {lineno}: {e}"))?;
        let value = rest.trim();
        let value = value.split_whitespace().next().unwrap_or("");
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
            return Err(format!("line {lineno}: unparsable value {value:?}"));
        }
        // Fold summary satellites into their base family.
        let base = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| declared.get(*b).is_some_and(|k| k == "summary" || k == "histogram"))
            .unwrap_or(&name);
        let kind = declared.get(base).cloned().unwrap_or_default();
        let fam = dump.families.entry(base.to_string()).or_insert(PromFamily { kind, samples: 0 });
        fam.samples += 1;
    }
    Ok(dump)
}

/// Splits a sample line at the end of the metric name.
fn split_name(line: &str) -> Option<(String, &str)> {
    let end = line
        .char_indices()
        .find(|&(i, c)| {
            !(c.is_ascii_alphanumeric() || c == '_' || c == ':') || (i == 0 && c.is_ascii_digit())
        })
        .map(|(i, _)| i)
        .unwrap_or(line.len());
    if end == 0 {
        return None;
    }
    Some((line[..end].to_string(), &line[end..]))
}

/// Consumes an optional `{k="v",...}` label set, returning the remainder.
fn parse_labels(rest: &str) -> Result<&str, String> {
    let Some(body) = rest.strip_prefix('{') else {
        return Ok(rest);
    };
    // Walk to the matching unescaped closing brace outside quotes.
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => {
                let inner = &body[..i];
                if !inner.is_empty() {
                    for pair in split_label_pairs(inner) {
                        let (k, v) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("label pair {pair:?} has no '='"))?;
                        if !crate::registry::valid_name(k.trim()) {
                            return Err(format!("bad label name {k:?}"));
                        }
                        let v = v.trim();
                        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                            return Err(format!("label value {v:?} is not quoted"));
                        }
                    }
                }
                return Ok(&body[i + 1..]);
            }
            _ => {}
        }
    }
    Err("unterminated label set".into())
}

/// Splits `k="v",k2="v2"` on commas outside quotes.
fn split_label_pairs(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Unit;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter_with("tpa_requests_total", &[("kind", "single")], "requests served").add(7);
        reg.gauge("tpa_overlay_edges", "overlay size").set(42.0);
        let h = reg.histogram_with(
            "tpa_request_latency_seconds",
            &[("backend", "patched")],
            "per-request latency",
            Unit::Nanoseconds,
        );
        for v in [1_000u64, 2_000, 50_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        let reg = sample_registry();
        let text = reg.render_prometheus();
        let dump = parse_prometheus(&text).expect("must parse");
        assert!(dump.has_family("tpa_requests_total"));
        assert!(dump.has_family("tpa_overlay_edges"));
        assert!(dump.has_family("tpa_request_latency_seconds"));
        assert_eq!(dump.families["tpa_requests_total"].kind, "counter");
        assert_eq!(dump.families["tpa_request_latency_seconds"].kind, "summary");
        // 3 quantiles + sum + count fold into one summary family.
        assert_eq!(dump.families["tpa_request_latency_seconds"].samples, 5);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("tpa_x{unclosed 1").is_err());
        assert!(parse_prometheus("tpa_x notanumber").is_err());
        assert!(parse_prometheus("tpa_x{k=unquoted} 1").is_err());
        assert!(parse_prometheus("{} 1").is_err());
        // Valid corner cases.
        assert!(parse_prometheus("tpa_x 1\n\n# comment\ntpa_y{a=\"b,c\"} 2.5e-3\n").is_ok());
        assert!(parse_prometheus("tpa_x NaN").is_ok());
    }

    #[test]
    fn json_renders_all_series() {
        let reg = sample_registry();
        let json = reg.render_json();
        assert!(json.contains("\"tpa_requests_total\""));
        assert!(json.contains("\"type\": \"histogram\""));
        for key in ["\"p50\":", "\"p90\":", "\"p99\":"] {
            assert!(json.contains(key), "missing quantile key {key}");
        }
        // Crude structural sanity: brackets balance.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
