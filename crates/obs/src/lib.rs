//! # tpa-obs — lock-free observability primitives
//!
//! Self-contained (no external dependencies, same offline discipline as
//! the vendored shims) metrics substrate for the TPA serving stack:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`.
//! * [`Gauge`] — a last-write-wins `f64` (stored as bits in an
//!   `AtomicU64`).
//! * [`Histogram`] — a fixed-bucket log-linear latency histogram with
//!   per-thread shards: `record` is one relaxed `fetch_add` per field on
//!   a thread-striped shard, and shards are merged only at readout.
//!   Quantiles (p50/p90/p99) come back with at most one sub-bucket of
//!   relative error (≤ 12.5%).
//! * [`Span`] — an RAII timing guard: created from a histogram, records
//!   its elapsed nanoseconds on drop (or explicitly via
//!   [`Span::finish`]).
//! * [`MetricsRegistry`] — names + labels + help for a set of
//!   instruments, with merged snapshots ([`MetricsRegistry::snapshot`])
//!   and two text expositions: Prometheus
//!   ([`MetricsRegistry::render_prometheus`], histograms rendered as
//!   `summary` families) and JSON
//!   ([`MetricsRegistry::render_json`]).
//! * [`parse_prometheus`] — a validator for the Prometheus exposition,
//!   shared by the CLI `stats` command and the CI smoke step so a dump
//!   that fails to parse (or is missing required families) fails loudly.
//!
//! The registry's interior lock is touched only at registration and
//! readout: the hot path operates on `Arc`-shared instruments and is
//! entirely lock-free (relaxed atomics), so any number of reader threads
//! can record into one histogram while a scraper snapshots it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

mod export;
mod hist;
mod registry;

pub use export::{parse_prometheus, PromDump, PromFamily};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, Span, BUCKETS};
pub use registry::{Counter, Gauge, Instrument, MetricSample, MetricsRegistry, SampleValue, Unit};
