//! The sharded log-linear histogram and its RAII timing span.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power-of-two
/// octave, bounding the relative quantile error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
/// Values below 16 get one exact bucket each (error 0 where latencies
/// are so small that relative error would be meaningless).
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);
/// Octaves covering the rest of the `u64` range: msb 4 through 63.
const OCTAVES: usize = 60;
/// Total fixed bucket count: 16 exact + 60 octaves × 8 sub-buckets.
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * (1 << SUB_BITS);

/// Write shards: threads stripe across these so concurrent `record`
/// calls don't all contend one cache line. Merged at readout.
const SHARDS: usize = 8;

/// Maps a value to its bucket index. Total over `u64`, monotone, and
/// exact below [`LINEAR_MAX`].
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & ((1 << SUB_BITS) - 1)) as usize;
        LINEAR_MAX as usize + (msb - SUB_BITS - 1) as usize * (1 << SUB_BITS) + sub
    }
}

/// Inclusive `(lower, upper)` value range of bucket `idx` — the inverse
/// of [`bucket_index`]: every `v` in the range maps back to `idx`.
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_MAX as usize {
        (idx as u64, idx as u64)
    } else {
        let rel = idx - LINEAR_MAX as usize;
        let octave = (rel >> SUB_BITS) as u32;
        let sub = (rel & ((1 << SUB_BITS) - 1)) as u64;
        let shift = octave + 1;
        let lower = ((1 << SUB_BITS) + sub) << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// One write stripe: its own bucket array plus count/sum/max, all
/// relaxed atomics. Padding against false sharing is not attempted —
/// the bucket arrays themselves are ~4 KiB apart already.
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Round-robin shard assignment: each thread picks a stripe once and
/// keeps it for life, so a steady reader pool spreads evenly and a
/// thread's records never migrate mid-run.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS; // ord: shard assignment only needs uniqueness-ish spread; the modulo result is thread-local
}

/// A fixed-bucket log-linear histogram (HDR-style) for latency-scale
/// `u64` samples — nanoseconds by convention on timing paths, raw
/// counts elsewhere.
///
/// `record` is lock-free and wait-free on the caller's side: four
/// relaxed atomic RMWs on a thread-striped shard. Readout merges the
/// shards into a [`HistogramSnapshot`]; quantiles are nearest-rank over
/// the merged buckets and return the containing bucket's upper bound,
/// so the reported quantile is an upper estimate within one sub-bucket
/// (≤ 12.5% relative, exact below 16).
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { shards: (0..SHARDS).map(|_| Shard::new()).collect() }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[MY_SHARD.with(|s| *s)];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // ord: per-shard tally; the snapshot merge tolerates in-flight skew by design
        shard.count.fetch_add(1, Ordering::Relaxed); // ord: per-shard tally; the snapshot merge tolerates in-flight skew by design
        shard.sum.fetch_add(v, Ordering::Relaxed); // ord: per-shard tally; the snapshot merge tolerates in-flight skew by design
        shard.max.fetch_max(v, Ordering::Relaxed); // ord: per-shard running max; commutative, no publication
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts an RAII span that records its elapsed time into this
    /// histogram when dropped.
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, start: Instant::now() }
    }

    /// Merges all shards into a point-in-time snapshot. Concurrent
    /// `record`s may land on either side of the merge — each sample is
    /// counted exactly once overall, never torn across fields by more
    /// than the in-flight writes.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
        for shard in self.shards.iter() {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed); // ord: statistical merge; documented to tolerate in-flight writes
            }
            count += shard.count.load(Ordering::Relaxed); // ord: statistical merge; documented to tolerate in-flight writes
            sum += shard.sum.load(Ordering::Relaxed); // ord: statistical merge; documented to tolerate in-flight writes
            max = max.max(shard.max.load(Ordering::Relaxed)); // ord: statistical merge; documented to tolerate in-flight writes
        }
        HistogramSnapshot { buckets: buckets.into_boxed_slice(), count, sum, max }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) over a fresh snapshot.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count.load(Ordering::Relaxed)).sum() // ord: statistical readout; samples need no happens-before edge
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.quantile(0.5))
            .field("p99", &snap.quantile(0.99))
            .field("max", &snap.max)
            .finish()
    }
}

/// A merged, immutable view of a [`Histogram`] at one point in time.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Merged per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: Box<[u64]>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (same unit as the samples).
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile: the upper bound of the bucket containing
    /// the `ceil(q·count)`-th smallest sample. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum: the top bucket's
                // bound can overshoot `max` by the sub-bucket width.
                return bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An RAII timing guard tied to a [`Histogram`]: started by
/// [`Histogram::span`], records the elapsed nanoseconds exactly once —
/// on drop, or eagerly through [`Span::finish`].
pub struct Span<'h> {
    hist: &'h Histogram,
    start: Instant,
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("start", &self.start).finish_non_exhaustive()
    }
}

impl Span<'_> {
    /// Stops the span now and returns the recorded duration.
    pub fn finish(self) -> Duration {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        std::mem::forget(self);
        elapsed
    }

    /// Time elapsed so far without recording.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_are_inverse() {
        // Every bucket's bounds map back to the bucket, and boundaries
        // between adjacent buckets are tight.
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(hi), idx, "upper bound of {idx}");
            if idx + 1 < BUCKETS {
                assert_eq!(bucket_bounds(idx + 1).0, hi + 1, "gap after {idx}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 1_000, 123_456, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            assert!((hi - lo) as f64 <= lo as f64 / 8.0 + 1.0, "bucket too wide at {v}");
        }
    }

    #[test]
    fn quantiles_and_moments() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.max, 1000);
        let p50 = snap.quantile(0.5);
        assert!((450..=570).contains(&p50), "p50 {p50}");
        let p99 = snap.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn span_records_once() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        let d = h.span().finish();
        assert_eq!(h.count(), 2);
        assert!(d.as_nanos() > 0);
    }
}
