//! The instrument registry: names, labels, help text, and merged
//! snapshots over a set of counters, gauges, and histograms.

use crate::hist::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter. `inc`/`add` are single relaxed
/// `fetch_add`s — safe to hammer from any number of threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed); // ord: statistical counter; readers tolerate being one increment behind
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed); // ord: statistical counter; readers tolerate being one increment behind
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ord: statistical readout; no other memory rides on the value
    }
}

/// A last-write-wins `f64` gauge (bits stored in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed); // ord: last-write-wins gauge; the bits are self-contained
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed)) // ord: last-write-wins gauge readout; no other memory rides on the value
    }
}

/// What a histogram's `u64` samples mean, driving exposition: nanosecond
/// timings are rendered in seconds (Prometheus base unit), raw counts
/// are rendered as-is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Samples are nanoseconds; exported quantiles/sums are seconds.
    Nanoseconds,
    /// Samples are dimensionless counts; exported verbatim.
    Count,
}

impl Unit {
    /// Scale factor applied at exposition time.
    pub fn scale(self) -> f64 {
        match self {
            Unit::Nanoseconds => 1e-9,
            Unit::Count => 1.0,
        }
    }
}

/// A registered instrument handle (what [`MetricsRegistry`] hands back).
#[derive(Clone, Debug)]
pub enum Instrument {
    /// A counter handle.
    Counter(Arc<Counter>),
    /// A gauge handle.
    Gauge(Arc<Gauge>),
    /// A histogram handle plus its sample unit.
    Histogram(Arc<Histogram>, Unit),
}

struct Registered {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    instrument: Instrument,
}

/// The value part of one [`MetricSample`].
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Merged histogram reading plus its unit.
    Histogram(HistogramSnapshot, Unit),
}

/// One instrument's reading at snapshot time.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Metric family name (Prometheus-legal: `[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label key/value pairs distinguishing series within the family.
    pub labels: Vec<(String, String)>,
    /// Help text (first registration wins).
    pub help: String,
    /// The reading.
    pub value: SampleValue,
}

/// A named collection of instruments. Registration and snapshotting
/// take an interior `RwLock`; everything between — the actual
/// recording — happens on the returned `Arc` handles and is lock-free.
///
/// Registering the same `(name, labels)` twice returns the existing
/// instrument, so independent components can share series without
/// coordinating.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: RwLock<Vec<Registered>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lookup(&self, name: &str, labels: &[(String, String)]) -> Option<Instrument> {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        entries.iter().find(|r| r.name == name && r.labels == labels).map(|r| r.instrument.clone())
    }

    fn register(
        &self,
        name: &str,
        labels: Vec<(String, String)>,
        help: &str,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        if let Some(existing) = self.lookup(name, &labels) {
            return existing;
        }
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        // Re-check under the write lock: a racing registration wins.
        if let Some(r) = entries.iter().find(|r| r.name == name && r.labels == labels) {
            return r.instrument.clone();
        }
        let instrument = make();
        entries.push(Registered {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a labeled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, own_labels(labels), help, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self
            .register(name, own_labels(labels), help, || Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str, unit: Unit) -> Arc<Histogram> {
        self.histogram_with(name, &[], help, unit)
    }

    /// Registers (or retrieves) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        unit: Unit,
    ) -> Arc<Histogram> {
        match self.register(name, own_labels(labels), help, || {
            Instrument::Histogram(Arc::new(Histogram::new()), unit)
        }) {
            Instrument::Histogram(h, _) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Reads every registered instrument into a merged point-in-time
    /// sample list, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|r| MetricSample {
                name: r.name.clone(),
                labels: r.labels.clone(),
                help: r.help.clone(),
                value: match &r.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h, unit) => SampleValue::Histogram(h.snapshot(), *unit),
                },
            })
            .collect()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry").field("instruments", &entries.len()).finish()
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect()
}

pub(crate) fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedups_by_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("tpa_requests_total", "requests");
        let b = reg.counter("tpa_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series must share the counter");
        let c = reg.counter_with("tpa_requests_total", &[("kind", "single")], "requests");
        c.inc();
        assert_eq!(a.get(), 3, "labeled series is distinct");
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn gauges_round_trip_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("tpa_overlay_ratio", "overlay fill");
        g.set(0.625);
        assert_eq!(g.get(), 0.625);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("tpa_requests_total"));
        assert!(valid_name("_x:y9"));
        assert!(!valid_name("9bad"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
