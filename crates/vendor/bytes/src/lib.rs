//! Offline stand-in for the `bytes` crate: just the [`Buf`] / [`BufMut`]
//! methods the binary snapshot codec uses, implemented for `&[u8]` and
//! `Vec<u8>`.

#![warn(missing_docs)]

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_u64() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xy");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 14);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
