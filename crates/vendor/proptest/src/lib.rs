//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, range / tuple / [`Just`]
//! strategies, `prop_map` / `prop_flat_map` combinators,
//! [`collection::vec`], and the `prop_assert*` macros. Cases are generated
//! from a per-test deterministic seed; failing inputs are reported by the
//! case index in the panic message. No shrinking is performed.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// A length specification: an exact `usize` or a half-open range,
    /// mirroring proptest's `SizeRange` conversions.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange(len..len + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and deterministic case seeding.

    use rand::{rngs::StdRng, SeedableRng};

    /// How many random cases each property test runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one `(test, case)` pair: FNV-1a over the
    /// test path, mixed with the case index.
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. Grammar mirrors the real crate:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let __run = || {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of {} failed (deterministic; rerun reproduces it)",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), collection::vec(0u32..n as u32, 0..20)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, xs) in pair()) {
            for &x in &xs {
                prop_assert!((x as usize) < n);
            }
        }

        #[test]
        fn map_applies(v in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 11);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("t::x", 3);
        let mut b = crate::test_runner::case_rng("t::x", 3);
        let mut c = crate::test_runner::case_rng("t::x", 4);
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
