//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple wall-clock measurement: each benchmark is
//! auto-calibrated to ~20 ms batches, sampled `sample_size` times, and the
//! median ns/iter (plus throughput, when declared) is printed.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declared per-iteration work, used to print rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `iters` calls of `f` (calibrated by the harness).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: grow the batch size until one batch takes ≥ ~20 ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed_ns: 0.0 };
        f(&mut b);
        if b.elapsed_ns >= 20_000_000.0 || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }
    // Sample.
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed_ns: 0.0 };
        f(&mut b);
        samples.push(b.elapsed_ns / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let per_iter_ns = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => format!(" ({:.1} Melem/s)", e as f64 / per_iter_ns * 1e3),
        Throughput::Bytes(by) => {
            format!(" ({:.1} MiB/s)", by as f64 / per_iter_ns * 1e9 / (1 << 20) as f64 / 1e6)
        }
    });
    println!("{label:<48} {:>12}/iter{}", format_ns(per_iter_ns), rate.unwrap_or_default());
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
