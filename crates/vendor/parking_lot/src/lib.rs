//! Offline stand-in for `parking_lot`: a [`Mutex`] with `const fn new`
//! and a panic-free `lock()` (poisoning is swallowed, matching
//! parking_lot semantics), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

/// RAII lock guard; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion primitive with parking_lot's API shape.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn usable_in_static() {
        static CELL: Mutex<Option<u32>> = Mutex::new(None);
        *CELL.lock() = Some(5);
        assert_eq!(*CELL.lock(), Some(5));
    }
}
