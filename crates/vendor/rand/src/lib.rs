//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the thin slice of `rand`'s API it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ with SplitMix64 seed expansion — deterministic across
//! runs and platforms, which is all the generators and tests rely on.

#![warn(missing_docs)]

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so `R: Rng + ?Sized` receivers work
/// exactly as with the real crate).
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0,1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (reduce(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased `[0, span)` via Lemire-style rejection (span > 0).
fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded by
    /// SplitMix64 expansion of a `u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn works_through_unsized_receiver() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
