//! Minimal dependency-free argument parsing for the `tpa` CLI.
//!
//! Grammar: `tpa <subcommand> [--flag value]... [--switch]...`.

use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus `--key value` options.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    /// `--key value` pairs. Bare switches map to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses a token stream (excluding `argv[0]`).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Args, ParseError> {
        let mut it = tokens.into_iter().peekable();
        let command =
            it.next().ok_or_else(|| ParseError("missing subcommand; try `tpa help`".into()))?;
        if command.starts_with("--") {
            return Err(ParseError(format!("expected subcommand, found flag {command}")));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ParseError(format!("unexpected positional argument {tok}")))?;
            if key.is_empty() {
                return Err(ParseError("empty flag name".into()));
            }
            // A flag is a switch if the next token is absent or another flag.
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            if options.insert(key.to_string(), value).is_some() {
                return Err(ParseError(format!("duplicate flag --{key}")));
            }
        }
        Ok(Args { command, options })
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, ParseError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ParseError(format!("missing required flag --{key}")))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| ParseError(format!("flag --{key}: cannot parse {raw:?}"))),
        }
    }

    /// Boolean switch (present ⇒ true).
    pub fn switch(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v == "true").unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(toks("query --graph g.bin --seed 42 --top 10")).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.required("graph").unwrap(), "g.bin");
        assert_eq!(a.get_or::<u32>("seed", 0).unwrap(), 42);
        assert_eq!(a.get_or::<usize>("top", 5).unwrap(), 10);
    }

    #[test]
    fn switches_without_values() {
        let a = Args::parse(toks("stats --graph g.bin --verbose")).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn switch_followed_by_flag() {
        let a = Args::parse(toks("stats --verbose --graph g.bin")).unwrap();
        assert!(a.switch("verbose"));
        assert_eq!(a.required("graph").unwrap(), "g.bin");
    }

    #[test]
    fn missing_subcommand_is_error() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(toks("--graph g.bin")).is_err());
    }

    #[test]
    fn duplicate_flag_is_error() {
        assert!(Args::parse(toks("x --a 1 --a 2")).is_err());
    }

    #[test]
    fn missing_required_is_reported() {
        let a = Args::parse(toks("query --seed 1")).unwrap();
        let err = a.required("graph").unwrap_err();
        assert!(err.0.contains("--graph"));
    }

    #[test]
    fn bad_number_is_reported() {
        let a = Args::parse(toks("query --seed abc")).unwrap();
        assert!(a.get_or::<u32>("seed", 0).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(toks("query")).unwrap();
        assert_eq!(a.get_or::<usize>("top", 7).unwrap(), 7);
        assert_eq!(a.get("missing"), None);
    }
}
