//! Implementations of the `tpa` subcommands, separated from `main` for
//! testability. Every command takes parsed [`Args`] and a writer for
//! output, and returns a process exit code.

use crate::args::Args;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use tpa_core::{
    top_k_scored, AdmissionConfig, CpiConfig, DegradationLevel, FrontierPolicy,
    IndexStalenessPolicy, MaintenanceMode, QueryEngine, QueryRequest, QueryResponse, ScoreCache,
    ServiceBuilder, ShedPolicy, TpaIndex, TpaParams,
};
use tpa_graph::{
    algo, io as gio, reorder, CsrGraph, DynamicGraph, EdgeUpdate, NodeId, ReorderStrategy,
};
use tpa_obs::{parse_prometheus, MetricsRegistry};

/// Runs a subcommand; prints results to `out` and errors to stderr.
pub fn run(args: &Args, out: &mut dyn Write) -> i32 {
    let result = match args.command.as_str() {
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        "generate" => cmd_generate(args, out),
        "stats" => cmd_stats(args, out),
        "preprocess" => cmd_preprocess(args, out),
        "query" => cmd_query(args, out),
        "batch" => cmd_batch(args, out),
        "exact" => cmd_exact(args, out),
        "update" => cmd_update(args, out),
        "convert" => cmd_convert(args, out),
        other => Err(format!("unknown subcommand {other:?}; try `tpa help`")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            1
        }
    }
}

/// CLI usage text.
pub fn usage() -> &'static str {
    "tpa — Two-Phase Approximation for Random Walk with Restart

USAGE: tpa <command> [flags]

COMMANDS:
  generate   --dataset <key> [--scale N] --out <file>
             write a synthetic Table-II analog graph (binary snapshot)
  convert    --in <edges.txt|snapshot> --out <file> [--format edges|snapshot]
             convert between edge-list and snapshot formats
  stats      --graph <file> [--cc-sample N]
             print node/edge counts, degrees, components, reciprocity
  stats      --metrics <dump.prom> [--require fam1,fam2,...]
             validate a saved Prometheus metrics dump (written by
             --metrics-out below): parse it, print a per-family summary,
             and fail unless every --require family is present
  preprocess --graph <file> --s <S> --t <T> --out <index.tpa>
             [--reorder none|degree|rcm|hub|slashburn]
             run TPA's preprocessing phase and save the index; --reorder
             relabels the graph for cache locality first and stores the
             permutation inside the index (queries restore it)
  query      --graph <file> --index <index.tpa> --seed <node>
             [--topk K [--exact-bounds]] [--threads N]
             [--frontier auto|dense|sparse]
             approximate RWR scores for a seed (fast online phase); if
             the index was preprocessed with --reorder, the same
             relabeling is applied transparently
  batch      --graph <file> --seeds <file> [--index <index.tpa>]
             [--topk K] [--threads N]
             [--reorder none|degree|rcm|hub|slashburn]
             [--frontier auto|dense|sparse]
             serve every seed in the file in one batched engine pass
             (seeds are whitespace/newline separated; # comments ok);
             without --index the batch is answered exactly; --reorder
             only applies to the exact (index-less) path — an index
             brings its own ordering
  exact      --graph <file> --seed <node> [--topk K [--exact-bounds]]
             [--threads N] [--reorder none|degree|rcm|hub|slashburn]
             [--frontier auto|dense|sparse]
             exact RWR via power iteration (ground truth)
  update     --graph <file> --stream <file> [--index <index.tpa>]
             [--topk K] [--threads N] [--maintain] [--auto-refresh]
             [--patch-index] [--compact-threshold F] [--stale-threshold F]
             replay an edge-update stream with interleaved queries on a
             dynamic (delta-overlay) graph. Stream lines:
               + u v     insert edge        - u v     delete edge
               ? seed    answer a top-k query at this point
               compact   fold the overlay into a fresh snapshot
             --maintain serves repeat queries from incrementally
             maintained cached scores (OSP offset propagation) instead of
             re-running the full online phase; --patch-index repairs a
             stale index by propagating the accumulated operator delta
             through its stranger vector (O(affected) offset propagation)
             instead of the full re-preprocess --auto-refresh runs

--threads 0 uses all available cores; the default (1) is sequential.
--top is accepted as an alias of --topk.
--exact-bounds (query, exact) runs the top-k cut through the bounded
sweep: per-node lower/upper bounds ride the iteration and stop it as
soon as the k results and their order are provably final, printing the
proof (early termination, iterations saved, nodes pruned). The answer
is always the same set in the same order as the dense cut. Requires an
explicit --topk.
--metrics-out FILE (query, batch, update) attaches a metrics registry to
the serving layer and writes its rendered dump to FILE when the command
finishes: Prometheus text format, or JSON when FILE ends in .json.
--metrics-every N re-writes the dump mid-run — every N seeds on the
batch path, every N update batches on the update path — so a long replay
can be scraped while it runs (requires --metrics-out).
--frontier picks the propagation direction for single-seed plans:
auto (default) runs the sparse-frontier kernel while the seed's
neighborhood is small and switches to the dense kernels once it
saturates; results are bitwise identical under every setting.
--deadline-ms N (query, batch, update) gives every request a hard
budget: expired requests fail with a typed deadline error at the next
CPI iteration boundary instead of running to completion.
--max-inflight N (query, batch, update) puts an admission gate in front
of the serving layer: at most N requests execute concurrently, excess
waits in a bounded queue, overflow is rejected with a typed overload
error. --shed-policy off|reject|degrade (requires --max-inflight) picks
what happens under pressure: off queues until a slot or the deadline,
reject never queues, degrade climbs an explicit precision-shedding
ladder (cache-first, loosened epsilon, dropped top-k proof, reject) —
the applied level is printed in the response metadata, never silent.

Dataset keys: slashdot-s google-s pokec-s livejournal-s wikilink-s
              twitter-s friendster-s"
}

/// Loads a graph from either format (snapshot detected by magic).
fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let p = Path::new(path);
    let head = std::fs::read(p).map_err(|e| format!("{path}: {e}"))?;
    if head.starts_with(b"TPAGRAF1") {
        gio::read_snapshot(std::io::Cursor::new(head)).map_err(|e| format!("{path}: {e}"))
    } else {
        gio::read_edge_list(std::io::Cursor::new(head), None).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let key = args.required("dataset").map_err(|e| e.to_string())?;
    let scale = args.get_or::<usize>("scale", 1).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let spec = tpa_datasets::spec(key).ok_or_else(|| format!("unknown dataset {key}"))?;
    let spec = if scale > 1 { spec.scaled_down(scale) } else { *spec };
    let d = tpa_datasets::generate(&spec);
    gio::write_snapshot_file(&d.graph, path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {} ({} nodes, {} edges, S={}, T={})",
        path,
        d.graph.n(),
        d.graph.m(),
        spec.s,
        spec.t
    );
    Ok(())
}

fn cmd_convert(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let output = args.required("out").map_err(|e| e.to_string())?;
    let format = args.get("format").unwrap_or("snapshot");
    let g = load_graph(input)?;
    match format {
        "snapshot" => gio::write_snapshot_file(&g, output).map_err(|e| e.to_string())?,
        "edges" => gio::write_edge_list_file(&g, output).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown --format {other}; use edges|snapshot")),
    }
    let _ = writeln!(out, "wrote {output} ({} nodes, {} edges)", g.n(), g.m());
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    if let Some(path) = args.get("metrics") {
        return cmd_stats_metrics(path, args.get("require"), out);
    }
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let cc_sample = args.get_or::<usize>("cc-sample", 500).map_err(|e| e.to_string())?;
    let (_, wcc) = algo::weakly_connected_components(&g);
    let (_, scc) = algo::strongly_connected_components(&g);
    let hist = algo::degree_histogram(&g);
    let max_deg = hist.len().saturating_sub(1);
    let gamma = algo::power_law_exponent(&g, 4);
    let _ = writeln!(out, "nodes                {}", g.n());
    let _ = writeln!(out, "edges                {}", g.m());
    let _ = writeln!(out, "avg out-degree       {:.3}", g.avg_degree());
    let _ = writeln!(out, "max out-degree       {max_deg}");
    let _ = writeln!(out, "dangling nodes       {}", g.dangling_nodes().len());
    let _ = writeln!(out, "weakly connected     {wcc}");
    let _ = writeln!(out, "strongly connected   {scc}");
    let _ = writeln!(out, "reciprocity          {:.4}", algo::reciprocity(&g));
    match gamma {
        Some(v) => {
            let _ = writeln!(out, "power-law exponent   {v:.2} (MLE, d>=4)");
        }
        None => {
            let _ = writeln!(out, "power-law exponent   n/a");
        }
    }
    let _ = writeln!(
        out,
        "clustering coeff     {:.4} (sampled {})",
        algo::clustering_coefficient(&g, cc_sample, 42),
        cc_sample.min(g.n())
    );
    Ok(())
}

/// `stats --metrics`: parse and validate a saved Prometheus dump. Doubles
/// as the CI scraper — a dump that fails to parse, or is missing a
/// `--require`d family, is a hard error.
fn cmd_stats_metrics(path: &str, require: Option<&str>, out: &mut dyn Write) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let dump = parse_prometheus(&text).map_err(|e| format!("{path}: {e}"))?;
    let _ =
        writeln!(out, "{path}: {} families, {} samples", dump.families.len(), dump.total_samples());
    for (name, fam) in &dump.families {
        let _ = writeln!(out, "  {:<40} {:<8} {} samples", name, fam.kind, fam.samples);
    }
    if let Some(req) = require {
        let missing: Vec<&str> = req
            .split(',')
            .map(str::trim)
            .filter(|f| !f.is_empty() && !dump.has_family(f))
            .collect();
        if !missing.is_empty() {
            return Err(format!("{path}: missing required families: {}", missing.join(", ")));
        }
        let _ = writeln!(out, "all required families present");
    }
    Ok(())
}

/// The registry behind `--metrics-out`, if requested.
fn metrics_registry_flag(args: &Args) -> Option<(String, Arc<MetricsRegistry>)> {
    args.get("metrics-out").map(|p| (p.to_string(), Arc::new(MetricsRegistry::new())))
}

/// `--metrics-every N` (0 / absent ⇒ only a final dump). Rejected
/// without `--metrics-out` — there would be nowhere to write.
fn metrics_every_flag(args: &Args) -> Result<usize, String> {
    let every = args.get_or::<usize>("metrics-every", 0).map_err(|e| e.to_string())?;
    if every > 0 && args.get("metrics-out").is_none() {
        return Err("--metrics-every requires --metrics-out".into());
    }
    Ok(every)
}

/// Renders the registry to `path`: JSON when the extension is `.json`,
/// Prometheus text format otherwise.
fn write_metrics_dump(path: &str, registry: &MetricsRegistry) -> Result<(), String> {
    let rendered =
        if path.ends_with(".json") { registry.render_json() } else { registry.render_prometheus() };
    std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))
}

/// Parses `--reorder {none,degree,rcm,hub,slashburn}` (absent ⇒ `None`).
fn reorder_flag(args: &Args) -> Result<Option<ReorderStrategy>, String> {
    match args.get("reorder") {
        None | Some("none") => Ok(None),
        Some(name) => ReorderStrategy::parse(name)
            .map(Some)
            .ok_or_else(|| format!("unknown --reorder {name}; use none|degree|rcm|hub|slashburn")),
    }
}

/// Parses `--frontier {auto,dense,sparse}` (absent ⇒ `Auto`).
fn frontier_flag(args: &Args) -> Result<FrontierPolicy, String> {
    match args.get("frontier") {
        None => Ok(FrontierPolicy::Auto),
        Some(name) => FrontierPolicy::parse(name)
            .ok_or_else(|| format!("unknown --frontier {name}; use auto|dense|sparse")),
    }
}

fn cmd_preprocess(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let s = args.get_or::<usize>("s", 5).map_err(|e| e.to_string())?;
    let t = args.get_or::<usize>("t", 10).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let strategy = reorder_flag(args)?;
    let params = TpaParams::new(s, t);
    let (index, dt) = tpa_eval::time(|| match strategy {
        None => TpaIndex::preprocess(&g, params),
        Some(strategy) => {
            let perm = reorder(&g, strategy);
            TpaIndex::preprocess(&g.permuted(&perm), params).with_permutation(perm)
        }
    });
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    index.save(std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "preprocessed in {} — index {}{} → {}",
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_bytes(index.index_bytes()),
        match strategy {
            Some(s) => format!(" (reordered: {})", s.name()),
            None => String::new(),
        },
        path
    );
    Ok(())
}

/// `--topk` with `--top` accepted as a legacy alias.
fn topk_flag(args: &Args) -> Result<usize, String> {
    match args.get("topk") {
        Some(_) => args.get_or::<usize>("topk", 10).map_err(|e| e.to_string()),
        None => args.get_or::<usize>("top", 10).map_err(|e| e.to_string()),
    }
}

/// `--exact-bounds`: only meaningful with an explicit top-k cut, so the
/// flag refuses to ride the implicit `--topk` default.
fn exact_bounds_flag(args: &Args) -> Result<bool, String> {
    if !args.switch("exact-bounds") {
        return Ok(false);
    }
    if args.get("topk").is_none() && args.get("top").is_none() {
        return Err("--exact-bounds requires an explicit --topk K".into());
    }
    Ok(true)
}

/// One line describing what the bounded top-k proof did.
fn print_topk_guarantee(out: &mut dyn Write, g: &tpa_core::TopKGuarantee) {
    let verdict = match (g.proven_exact, g.fallback_dense) {
        (true, true) => "proven exact (dense fallback: backend can't carry bounds)".to_string(),
        (false, _) => "NOT proven exact (iteration cap hit before separation)".to_string(),
        (true, false) if g.early_terminated => format!(
            "proven exact, terminated early ({} iterations saved, {} nodes pruned)",
            g.iterations_saved, g.pruned_nodes
        ),
        (true, false) => {
            format!("proven exact at natural end ({} nodes pruned)", g.pruned_nodes)
        }
    };
    let _ = writeln!(out, "top-k guarantee: {verdict}");
}

/// Starts a [`ServiceBuilder`] from the shared serving flags:
/// `--threads` (1 = sequential default, 0 = all cores, N workers) and
/// `--frontier`.
fn service_builder(g: CsrGraph, args: &Args) -> Result<ServiceBuilder, String> {
    let threads = args.get_or::<usize>("threads", 1).map_err(|e| e.to_string())?;
    Ok(ServiceBuilder::in_memory(g).threads(threads).frontier(frontier_flag(args)?))
}

/// One timing/metadata line for a served response.
fn print_response_meta(out: &mut dyn Write, resp: &QueryResponse, secs: f64) {
    let iters = match resp.iterations {
        Some(i) => format!(", {i} CPI iterations"),
        None => String::new(),
    };
    let degraded = match resp.degradation {
        DegradationLevel::None => String::new(),
        level => format!(", degraded: {level}"),
    };
    let _ = writeln!(
        out,
        "query took {} (backend {}, epoch {}, {}{iters}{degraded})",
        tpa_eval::format_secs(secs),
        resp.backend,
        resp.epoch,
        if resp.indexed { "indexed" } else { "exact" },
    );
}

/// Parses the shared resilience flags — `--deadline-ms` (per-request
/// budget, whole milliseconds), `--max-inflight` (admission gate bound),
/// and `--shed-policy off|reject|degrade` — into a per-request deadline
/// and an optional [`AdmissionConfig`].
fn admission_flags(
    args: &Args,
) -> Result<(Option<std::time::Duration>, Option<AdmissionConfig>), String> {
    let deadline = match args.get("deadline-ms") {
        None => None,
        Some(raw) => {
            let ms: u64 =
                raw.parse().map_err(|_| format!("--deadline-ms: cannot parse {raw:?}"))?;
            if ms == 0 {
                return Err("--deadline-ms must be at least 1".into());
            }
            Some(std::time::Duration::from_millis(ms))
        }
    };
    let admission = match (args.get("max-inflight"), args.get("shed-policy")) {
        (None, None) => None,
        (None, Some(_)) => {
            return Err("--shed-policy requires --max-inflight (the gate it configures)".into())
        }
        (Some(raw), shed) => {
            let max: usize =
                raw.parse().map_err(|_| format!("--max-inflight: cannot parse {raw:?}"))?;
            let mut cfg = AdmissionConfig::new(max);
            if let Some(policy) = shed {
                cfg = cfg.with_shed(ShedPolicy::parse(policy).map_err(|e| e.to_string())?);
            }
            Some(cfg)
        }
    };
    Ok((deadline, admission))
}

fn load_index(path: &str, g: &CsrGraph) -> Result<TpaIndex, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let index = TpaIndex::load(std::io::BufReader::new(f)).map_err(|e| e.to_string())?;
    if index.stranger().len() != g.n() {
        return Err(format!(
            "index is for a graph with {} nodes, this graph has {}",
            index.stranger().len(),
            g.n()
        ));
    }
    Ok(index)
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let index_path = args.required("index").map_err(|e| e.to_string())?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = topk_flag(args)?;
    if args.get("metrics-every").is_some() {
        return Err(
            "--metrics-every only applies to batch/update; query is a single request".into()
        );
    }
    let metrics = metrics_registry_flag(args);
    let index = load_index(index_path, &g)?;
    let (deadline, admission) = admission_flags(args)?;
    let mut builder = service_builder(g, args)?.index(index);
    if let Some((_, reg)) = &metrics {
        builder = builder.metrics(Arc::clone(reg));
    }
    if let Some(cfg) = admission {
        builder = builder.admission(cfg);
    }
    let service = builder.build().map_err(|e| e.to_string())?;
    let bounded = exact_bounds_flag(args)?;
    let mut request = QueryRequest::single(seed).top_k(top);
    if bounded {
        request = request.with_exact_bounds();
    }
    if let Some(d) = deadline {
        request = request.with_deadline(d);
    }
    let (resp, dt) = tpa_eval::time(|| service.submit(&request));
    let resp = resp.map_err(|e| e.to_string())?;
    print_response_meta(out, &resp, dt.as_secs_f64());
    if let Some(g) = &resp.topk {
        print_topk_guarantee(out, g);
    }
    print_ranking(out, &resp.result.into_ranked().pop().unwrap());
    if let Some((path, reg)) = &metrics {
        write_metrics_dump(path, reg)?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    Ok(())
}

fn cmd_exact(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = topk_flag(args)?;
    let mut builder = service_builder(g, args)?;
    if let Some(strategy) = reorder_flag(args)? {
        builder = builder.reordering(strategy);
    }
    let service = builder.build().map_err(|e| e.to_string())?;
    let mut request = QueryRequest::single(seed).top_k(top).exact();
    if exact_bounds_flag(args)? {
        request = request.with_exact_bounds();
    }
    let (resp, dt) = tpa_eval::time(|| service.submit(&request));
    let resp = resp.map_err(|e| e.to_string())?;
    print_response_meta(out, &resp, dt.as_secs_f64());
    if let Some(g) = &resp.topk {
        print_topk_guarantee(out, g);
    }
    print_ranking(out, &resp.result.into_ranked().pop().unwrap());
    Ok(())
}

/// Parses a seed file: whitespace/newline-separated node ids; `#` starts
/// a comment running to end of line.
fn parse_seed_file(path: &str) -> Result<Vec<NodeId>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            let seed: NodeId =
                tok.parse().map_err(|_| format!("{path}:{}: bad seed {tok:?}", lineno + 1))?;
            seeds.push(seed);
        }
    }
    if seeds.is_empty() {
        return Err(format!("{path}: no seeds found"));
    }
    Ok(seeds)
}

fn cmd_batch(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let seeds = parse_seed_file(args.required("seeds").map_err(|e| e.to_string())?)?;
    let top = topk_flag(args)?;
    let index = match args.get("index") {
        Some(path) => {
            if reorder_flag(args)?.is_some() {
                return Err("--reorder conflicts with --index: the index stores the ordering it \
                            was preprocessed with"
                    .into());
            }
            Some(load_index(path, &g)?)
        }
        None => None,
    };
    let exact = index.is_none();
    let mut builder = service_builder(g, args)?;
    match index {
        Some(index) => builder = builder.index(index),
        None => {
            if let Some(strategy) = reorder_flag(args)? {
                builder = builder.reordering(strategy);
            }
        }
    }
    let metrics = metrics_registry_flag(args);
    let every = metrics_every_flag(args)?;
    if let Some((_, reg)) = &metrics {
        builder = builder.metrics(Arc::clone(reg));
    }
    let (deadline, admission) = admission_flags(args)?;
    if let Some(cfg) = admission {
        builder = builder.admission(cfg);
    }
    let service = builder.build().map_err(|e| e.to_string())?;
    // With --metrics-every the batch is submitted in chunks of that many
    // seeds and the dump re-written between chunks, so a long batch can
    // be scraped mid-run. One chunk == one submit == the whole batch
    // otherwise; rankings are identical either way (lanes are
    // independent).
    let chunk = if every > 0 { every } else { seeds.len() };
    let mut rankings = Vec::with_capacity(seeds.len());
    let mut backend = "";
    let mut epoch = 0;
    let started = std::time::Instant::now();
    let mut worst_degradation = DegradationLevel::None;
    for part in seeds.chunks(chunk) {
        let mut request = QueryRequest::batch(part.to_vec()).top_k(top);
        if exact {
            request = request.exact();
        }
        if let Some(d) = deadline {
            request = request.with_deadline(d);
        }
        let resp = service.submit(&request).map_err(|e| e.to_string())?;
        backend = resp.backend;
        epoch = resp.epoch;
        worst_degradation = worst_degradation.max(resp.degradation);
        rankings.extend(resp.result.into_ranked());
        if let Some((path, reg)) = &metrics {
            write_metrics_dump(path, reg)?;
        }
    }
    let dt = started.elapsed();
    let degraded = match worst_degradation {
        DegradationLevel::None => String::new(),
        level => format!(", degraded: {level}"),
    };
    let _ = writeln!(
        out,
        "batched {} seeds in {} ({} per seed, backend {backend}, epoch {epoch}{degraded})",
        seeds.len(),
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_secs(dt.as_secs_f64() / seeds.len() as f64),
    );
    for (seed, ranked) in seeds.iter().zip(rankings) {
        let _ = writeln!(out, "\nseed {seed}:");
        print_ranking(out, &ranked);
    }
    if let Some((path, _)) = &metrics {
        let _ = writeln!(out, "\nmetrics written to {path}");
    }
    Ok(())
}

/// One event of an update stream (see [`parse_stream_file`]).
#[derive(Clone, Copy, Debug, PartialEq)]
enum StreamEvent {
    Update(EdgeUpdate),
    Query(NodeId),
    Compact,
}

/// Parses an update-stream file. Line grammar (whitespace-separated,
/// `#` starts a comment):
/// `+ u v` insert, `- u v` delete, `? seed` query, `compact` compaction.
fn parse_stream_file(path: &str) -> Result<Vec<StreamEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| format!("{path}:{}: {what}: {line:?}", lineno + 1);
        let mut toks = line.split_whitespace();
        let op = toks.next().unwrap();
        let node = |toks: &mut dyn Iterator<Item = &str>, what: &str| -> Result<NodeId, String> {
            toks.next().ok_or_else(|| bad(what))?.parse().map_err(|_| bad(what))
        };
        let event = match op {
            "+" => StreamEvent::Update(EdgeUpdate::Insert(
                node(&mut toks, "bad insert")?,
                node(&mut toks, "bad insert")?,
            )),
            "-" => StreamEvent::Update(EdgeUpdate::Delete(
                node(&mut toks, "bad delete")?,
                node(&mut toks, "bad delete")?,
            )),
            "?" => StreamEvent::Query(node(&mut toks, "bad query")?),
            "compact" => StreamEvent::Compact,
            _ => return Err(bad("unknown stream op")),
        };
        if toks.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        events.push(event);
    }
    if events.is_empty() {
        return Err(format!("{path}: empty update stream"));
    }
    Ok(events)
}

/// `update`: replay an edge-update stream with interleaved queries on a
/// dynamic delta-overlay engine. Consecutive edge updates are applied as
/// one batch at each query/compact boundary.
fn cmd_update(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let events = parse_stream_file(args.required("stream").map_err(|e| e.to_string())?)?;
    let top = topk_flag(args)?;
    let maintain = args.switch("maintain");
    let patch_index = args.switch("patch-index");
    if patch_index && args.switch("auto-refresh") {
        return Err("--patch-index conflicts with --auto-refresh: pick one repair strategy \
                    (incremental patch vs full re-preprocess)"
            .into());
    }
    if patch_index && args.get("index").is_none() {
        return Err("--patch-index requires --index".into());
    }
    let compact_threshold =
        args.get_or::<f64>("compact-threshold", 0.02).map_err(|e| e.to_string())?;
    let stale_threshold = args.get_or::<f64>("stale-threshold", 0.05).map_err(|e| e.to_string())?;
    // NaN must fail too, so test "positive" directly rather than `<= 0`.
    if compact_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("--compact-threshold must be positive, got {compact_threshold}"));
    }
    if stale_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("--stale-threshold must be positive, got {stale_threshold}"));
    }
    let n = g.n();
    for ev in &events {
        let in_range = |v: NodeId| (v as usize) < n;
        let ok = match *ev {
            StreamEvent::Update(up) => in_range(up.source()) && in_range(up.target()),
            StreamEvent::Query(s) => in_range(s),
            StreamEvent::Compact => true,
        };
        if !ok {
            return Err(format!("stream event {ev:?} out of range (n = {n})"));
        }
    }

    let dynamic = DynamicGraph::new(g).with_compact_threshold(Some(compact_threshold));
    let threads = args.get_or::<usize>("threads", 1).map_err(|e| e.to_string())?;
    let engine = if threads == 1 {
        QueryEngine::dynamic(dynamic)
    } else {
        QueryEngine::dynamic_parallel(dynamic, threads)
    };
    let mut engine = engine
        .with_staleness_policy(IndexStalenessPolicy {
            threshold: stale_threshold,
            auto_refresh: args.switch("auto-refresh"),
        })
        .map_err(|e| e.to_string())?;
    let metrics = metrics_registry_flag(args);
    let metrics_every = metrics_every_flag(args)?;
    if let Some((_, reg)) = &metrics {
        engine = engine.with_metrics(Arc::clone(reg));
    }
    // Attach after --metrics-out so the gate records into the registry.
    let (deadline, admission) = admission_flags(args)?;
    if let Some(cfg) = admission {
        engine = engine.with_admission(cfg).map_err(|e| e.to_string())?;
    }
    if let Some(path) = args.get("index") {
        let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let index = TpaIndex::load(std::io::BufReader::new(f)).map_err(|e| e.to_string())?;
        if index.stranger().len() != n {
            return Err(format!(
                "index is for a graph with {} nodes, this graph has {n}",
                index.stranger().len()
            ));
        }
        engine = engine.with_index(index);
    }
    let mut cache = maintain.then(|| ScoreCache::new(CpiConfig::default(), MaintenanceMode::Exact));

    let mut pending: Vec<EdgeUpdate> = Vec::new();
    let mut stats = ReplayStats::default();

    // Re-writes the `--metrics-out` dump every `--metrics-every` batches
    // (so a long replay can be scraped mid-run) and once at the end.
    let mut dumped_at = 0usize;
    let mut dump_metrics = |stats: &ReplayStats, done: bool| -> Result<(), String> {
        let Some((path, reg)) = &metrics else { return Ok(()) };
        let due = metrics_every > 0 && stats.batches >= dumped_at + metrics_every;
        if due || done {
            dumped_at = stats.batches;
            write_metrics_dump(path, reg)?;
        }
        Ok(())
    };

    for ev in &events {
        match *ev {
            StreamEvent::Update(up) => pending.push(up),
            StreamEvent::Compact => {
                flush_updates(&mut engine, &mut cache, &mut pending, patch_index, &mut stats)?;
                dump_metrics(&stats, false)?;
                engine.compact_dynamic().map_err(|e| e.to_string())?;
                stats.compactions += 1;
            }
            StreamEvent::Query(seed) => {
                flush_updates(&mut engine, &mut cache, &mut pending, patch_index, &mut stats)?;
                dump_metrics(&stats, false)?;
                stats.queries += 1;
                let mut degradation = DegradationLevel::None;
                let ranked = match &mut cache {
                    Some(cache) => {
                        let t = engine.dynamic_transition().expect("dynamic backend");
                        if !cache.contains(seed) {
                            let (_, dt) = tpa_eval::time(|| cache.warm(t, &[seed]));
                            stats.update_time += dt;
                        }
                        let (ranked, dt) =
                            tpa_eval::time(|| top_k_scored(&cache.scores(seed).unwrap(), top));
                        stats.query_time += dt;
                        ranked
                    }
                    None => {
                        let mut request = QueryRequest::single(seed).top_k(top);
                        if let Some(d) = deadline {
                            request = request.with_deadline(d);
                        }
                        let (resp, dt) = tpa_eval::time(|| engine.submit(&request));
                        let resp = resp.map_err(|e| e.to_string())?;
                        stats.query_time += dt;
                        degradation = resp.degradation;
                        resp.result.into_ranked().pop().unwrap()
                    }
                };
                match degradation {
                    DegradationLevel::None => {
                        let _ = writeln!(out, "query seed {seed} (top {top}):");
                    }
                    level => {
                        let _ = writeln!(out, "query seed {seed} (top {top}, degraded: {level}):");
                    }
                }
                print_ranking(out, &ranked);
            }
        }
    }
    flush_updates(&mut engine, &mut cache, &mut pending, patch_index, &mut stats)?;
    dump_metrics(&stats, true)?;

    let t = engine.dynamic_transition().expect("dynamic backend");
    let _ = writeln!(
        out,
        "\nreplayed {} events: {} edges changed ({} no-ops) in {} batches, {} queries",
        events.len(),
        stats.applied,
        stats.noops,
        stats.batches,
        stats.queries
    );
    let _ = writeln!(
        out,
        "graph now {} nodes / {} edges ({} patch entries pending), {} compactions, \
         {} index refreshes{}",
        t.n(),
        t.graph().m(),
        t.graph().delta_edges(),
        stats.compactions,
        stats.refreshes,
        if engine.index_stale() { " — index STALE (refresh advised)" } else { "" }
    );
    if patch_index {
        let _ =
            writeln!(out, "index stranger-patched {} times (offset propagation)", stats.patches);
    }
    let _ = writeln!(
        out,
        "update time {} · query time {}{}",
        tpa_eval::format_secs(stats.update_time.as_secs_f64()),
        tpa_eval::format_secs(stats.query_time.as_secs_f64()),
        if maintain { " (served from maintained cache)" } else { "" }
    );
    if let Some((path, _)) = &metrics {
        let _ = writeln!(out, "metrics written to {path}");
    }
    Ok(())
}

/// Counters accumulated while replaying an update stream.
#[derive(Default)]
struct ReplayStats {
    applied: usize,
    noops: usize,
    batches: usize,
    compactions: usize,
    refreshes: usize,
    patches: usize,
    queries: usize,
    update_time: std::time::Duration,
    query_time: std::time::Duration,
}

/// Applies the pending update batch to the engine (and the maintained
/// cache, when present), folding the outcome into `stats`. With
/// `patch_index`, a batch that tips the index past its staleness
/// threshold triggers an incremental stranger patch instead of leaving
/// the index flagged stale.
fn flush_updates(
    engine: &mut QueryEngine<'_>,
    cache: &mut Option<ScoreCache>,
    pending: &mut Vec<EdgeUpdate>,
    patch_index: bool,
    stats: &mut ReplayStats,
) -> Result<(), String> {
    if pending.is_empty() {
        return Ok(());
    }
    let (report, dt) = tpa_eval::time(|| engine.apply_updates(pending));
    let report = report.map_err(|e| e.to_string())?;
    stats.update_time += dt;
    stats.batches += 1;
    stats.applied += report.delta.stats.inserted + report.delta.stats.deleted;
    stats.noops += report.delta.stats.noops;
    stats.compactions += report.delta.stats.compacted as usize;
    stats.refreshes += report.index_refreshed as usize;
    if patch_index && report.index_stale {
        let (patched, dt) = tpa_eval::time(|| engine.patch_index());
        stats.update_time += dt;
        stats.patches += patched.map_err(|e| e.to_string())? as usize;
    }
    if let Some(cache) = cache {
        let t = engine.dynamic_transition().expect("dynamic backend");
        let (_, dt) = tpa_eval::time(|| cache.refresh(t, &report.delta));
        stats.update_time += dt;
    }
    pending.clear();
    Ok(())
}

fn print_ranking(out: &mut dyn Write, ranked: &[(NodeId, f64)]) {
    let _ = writeln!(out, "rank  node        score");
    for (rank, &(v, score)) in ranked.iter().enumerate() {
        let _ = writeln!(out, "{:<5} {:<11} {:.8}", rank + 1, v, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run_cmd(line: &str) -> (i32, String) {
        let args = Args::parse(line.split_whitespace().map(str::to_string)).expect("parse");
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tpa-cli-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(text.contains("preprocess"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, _) = run_cmd("frobnicate");
        assert_eq!(code, 1);
    }

    #[test]
    fn full_pipeline_generate_stats_preprocess_query() {
        let d = tmpdir("pipeline");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");

        let (code, text) =
            run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("nodes"));

        let (code, text) = run_cmd(&format!("stats --graph {}", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("reciprocity"));
        assert!(text.contains("strongly connected"));

        let (code, text) = run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");

        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --top 5",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("rank"));

        let (code, text) = run_cmd(&format!("exact --graph {} --seed 3", graph.display()));
        assert_eq!(code, 0, "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn convert_roundtrip() {
        let d = tmpdir("convert");
        let snap = d.join("c.bin");
        let edges = d.join("c.txt");
        let (code, _) =
            run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", snap.display()));
        assert_eq!(code, 0);
        let (code, _) = run_cmd(&format!(
            "convert --in {} --out {} --format edges",
            snap.display(),
            edges.display()
        ));
        assert_eq!(code, 0);
        let g1 = load_graph(snap.to_str().unwrap()).unwrap();
        let g2 = load_graph(edges.to_str().unwrap()).unwrap();
        assert_eq!(g1, g2);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn query_rejects_mismatched_index() {
        let d = tmpdir("mismatch");
        let g1 = d.join("a.bin");
        let g2 = d.join("b.bin");
        let idx = d.join("a.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", g1.display()));
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", g2.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            g1.display(),
            idx.display()
        ));
        let (code, _) =
            run_cmd(&format!("query --graph {} --index {} --seed 0", g2.display(), idx.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn batch_serves_seed_file_through_engine() {
        let d = tmpdir("batch");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&seeds, "0 3\n7 # trailing comment\n# full comment line\n9\n").unwrap();

        let (code, text) = run_cmd(&format!(
            "batch --graph {} --index {} --seeds {} --topk 3 --threads 2",
            graph.display(),
            index.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("batched 4 seeds"), "{text}");
        assert!(text.contains("backend parallel"), "{text}");
        assert!(text.contains("seed 7:"), "{text}");

        // Without an index the batch falls back to exact execution.
        let (code, text) = run_cmd(&format!(
            "batch --graph {} --seeds {} --topk 2",
            graph.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("backend sequential"), "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn batch_rejects_bad_seed_file() {
        let d = tmpdir("badseeds");
        let graph = d.join("g.bin");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        std::fs::write(&seeds, "1 frog 2\n").unwrap();
        let (code, _) =
            run_cmd(&format!("batch --graph {} --seeds {}", graph.display(), seeds.display()));
        assert_eq!(code, 1);
        std::fs::write(&seeds, "# only comments\n").unwrap();
        let (code, _) =
            run_cmd(&format!("batch --graph {} --seeds {}", graph.display(), seeds.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn query_accepts_topk_and_threads_flags() {
        let d = tmpdir("flags");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --topk 4 --threads 0",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        // Header + 4 ranked rows after the timing line.
        assert_eq!(text.lines().count(), 6, "{text}");
        let (code, text) =
            run_cmd(&format!("exact --graph {} --seed 3 --topk 4 --threads 2", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.lines().count(), 6, "{text}");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn exact_bounds_flag_prints_guarantee_and_needs_topk() {
        let d = tmpdir("bounds");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        let (code, text) =
            run_cmd(&format!("exact --graph {} --seed 3 --topk 4 --exact-bounds", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("top-k guarantee: proven exact"), "{text}");
        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --topk 4 --exact-bounds",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("top-k guarantee: proven exact"), "{text}");
        // Without the flag no guarantee line appears...
        let (code, text) = run_cmd(&format!("exact --graph {} --seed 3 --topk 4", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(!text.contains("top-k guarantee"), "{text}");
        // ...and without an explicit --topk the switch is refused
        // (the message goes to stderr; the buffer stays empty).
        let (code, text) =
            run_cmd(&format!("exact --graph {} --seed 3 --exact-bounds", graph.display()));
        assert_eq!(code, 1, "{text}");
        assert!(text.is_empty(), "{text}");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn update_replays_stream_with_interleaved_queries() {
        let d = tmpdir("update");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(
            &stream,
            "? 3            # query before any change\n\
             + 3 40\n+ 40 3\n- 3 40   # a batch of three updates\n\
             ? 3            # re-query on the evolved graph\n\
             compact\n\
             + 7 3\n\
             ? 7\n",
        )
        .unwrap();

        let (code, text) = run_cmd(&format!(
            "update --graph {} --index {} --stream {} --topk 3",
            graph.display(),
            index.display(),
            stream.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("query seed 3"), "{text}");
        assert!(text.contains("query seed 7"), "{text}");
        assert!(text.contains("3 queries"), "{text}");
        assert!(text.contains("1 compactions") || text.contains("2 compactions"), "{text}");

        // Maintained mode serves the same stream from cached scores.
        let (code, text) = run_cmd(&format!(
            "update --graph {} --stream {} --topk 3 --maintain",
            graph.display(),
            stream.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("served from maintained cache"), "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn update_maintained_ranking_matches_engine_ranking() {
        // The maintained cache and the plain engine must agree on the
        // final ranking (same graph state, exact scores either way).
        let d = tmpdir("update-agree");
        let graph = d.join("g.bin");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        std::fs::write(&stream, "+ 1 5\n+ 5 9\n- 1 5\n? 2\n").unwrap();
        let args = |extra: &str| {
            format!(
                "update --graph {} --stream {} --topk 4{extra}",
                graph.display(),
                stream.display()
            )
        };
        let (code_a, text_a) = run_cmd(&args(""));
        let (code_b, text_b) = run_cmd(&args(" --maintain"));
        assert_eq!(code_a, 0, "{text_a}");
        assert_eq!(code_b, 0, "{text_b}");
        let ranking = |t: &str| -> Vec<String> {
            t.lines()
                .skip_while(|l| !l.starts_with("rank"))
                .take_while(|l| !l.is_empty())
                .map(str::to_string)
                .collect()
        };
        assert_eq!(ranking(&text_a), ranking(&text_b));
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn update_patch_index_repairs_staleness_in_place() {
        let d = tmpdir("update-patch");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&stream, "+ 3 40\n+ 40 3\n? 3\n- 3 40\n? 40\n").unwrap();

        // A microscopic staleness threshold forces a patch per batch.
        let (code, text) = run_cmd(&format!(
            "update --graph {} --index {} --stream {} --patch-index --stale-threshold 1e-12",
            graph.display(),
            index.display(),
            stream.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("index stranger-patched 2 times"), "{text}");
        assert!(!text.contains("index STALE"), "{text}");

        // Contradictory or incomplete flag combinations are clean errors.
        let (code, _) = run_cmd(&format!(
            "update --graph {} --index {} --stream {} --patch-index --auto-refresh",
            graph.display(),
            index.display(),
            stream.display()
        ));
        assert_eq!(code, 1, "--patch-index + --auto-refresh must be rejected");
        let (code, _) = run_cmd(&format!(
            "update --graph {} --stream {} --patch-index",
            graph.display(),
            stream.display()
        ));
        assert_eq!(code, 1, "--patch-index without --index must be rejected");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn update_rejects_bad_streams() {
        let d = tmpdir("update-bad");
        let graph = d.join("g.bin");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        for bad in ["+ 1\n", "? frog\n", "jump 1 2\n", "+ 1 2 3\n", "# only comments\n"] {
            std::fs::write(&stream, bad).unwrap();
            let (code, _) = run_cmd(&format!(
                "update --graph {} --stream {}",
                graph.display(),
                stream.display()
            ));
            assert_eq!(code, 1, "stream {bad:?} should be rejected");
        }
        // Out-of-range node in an otherwise well-formed stream.
        std::fs::write(&stream, "+ 0 999999\n").unwrap();
        let (code, _) =
            run_cmd(&format!("update --graph {} --stream {}", graph.display(), stream.display()));
        assert_eq!(code, 1);
        // Non-positive thresholds are clean CLI errors, not panics.
        std::fs::write(&stream, "? 1\n").unwrap();
        for flag in ["--compact-threshold 0", "--compact-threshold -1", "--stale-threshold 0"] {
            let (code, _) = run_cmd(&format!(
                "update --graph {} --stream {} {flag}",
                graph.display(),
                stream.display()
            ));
            assert_eq!(code, 1, "{flag} should be rejected cleanly");
        }
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn reordered_index_roundtrips_through_query() {
        let d = tmpdir("reorder");
        let graph = d.join("g.bin");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        let plain_idx = d.join("plain.tpa");
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            plain_idx.display()
        ));
        let (code, plain) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --topk 5",
            graph.display(),
            plain_idx.display()
        ));
        assert_eq!(code, 0, "{plain}");
        for strategy in ["degree", "rcm", "hub", "slashburn"] {
            let idx = d.join(format!("{strategy}.tpa"));
            let (code, text) = run_cmd(&format!(
                "preprocess --graph {} --s 5 --t 10 --out {} --reorder {strategy}",
                graph.display(),
                idx.display()
            ));
            assert_eq!(code, 0, "{text}");
            assert!(text.contains(&format!("reordered: {strategy}")), "{text}");
            let (code, text) = run_cmd(&format!(
                "query --graph {} --index {} --seed 3 --topk 5",
                graph.display(),
                idx.display()
            ));
            assert_eq!(code, 0, "{text}");
            // Same ranked ids as the un-reordered index (scores differ
            // only in floating-point association).
            let ids = |t: &str| -> Vec<String> {
                t.lines()
                    .skip_while(|l| !l.starts_with("rank"))
                    .skip(1)
                    .map(|l| l.split_whitespace().nth(1).unwrap_or("").to_string())
                    .collect()
            };
            assert_eq!(ids(&plain), ids(&text), "strategy {strategy}");
        }
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn exact_accepts_reorder_and_batch_rejects_it_with_index() {
        let d = tmpdir("reorder-exact");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&seeds, "0 3 7\n").unwrap();

        let (code, text) =
            run_cmd(&format!("exact --graph {} --seed 3 --reorder degree", graph.display()));
        assert_eq!(code, 0, "{text}");
        let (code, _) =
            run_cmd(&format!("exact --graph {} --seed 3 --reorder frog", graph.display()));
        assert_eq!(code, 1);

        let (code, text) = run_cmd(&format!(
            "batch --graph {} --seeds {} --reorder rcm",
            graph.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        let (code, _) = run_cmd(&format!(
            "batch --graph {} --seeds {} --index {} --reorder rcm",
            graph.display(),
            seeds.display(),
            index.display()
        ));
        assert_eq!(code, 1, "reorder+index must be rejected");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn update_accepts_threads_flag() {
        let d = tmpdir("update-threads");
        let graph = d.join("g.bin");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        std::fs::write(&stream, "? 1\n+ 1 5\n? 1\n").unwrap();
        let single =
            run_cmd(&format!("update --graph {} --stream {}", graph.display(), stream.display()));
        let multi = run_cmd(&format!(
            "update --graph {} --stream {} --threads 4",
            graph.display(),
            stream.display()
        ));
        assert_eq!(single.0, 0, "{}", single.1);
        assert_eq!(multi.0, 0, "{}", multi.1);
        // Bit-identical serving: identical rankings line for line.
        let rankings = |t: &str| -> Vec<String> {
            t.lines()
                .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
                .map(Into::into)
                .collect()
        };
        assert_eq!(rankings(&single.1), rankings(&multi.1));
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn frontier_flag_roundtrips_and_is_bitwise_invisible() {
        let d = tmpdir("frontier");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&seeds, "0 3 7\n").unwrap();

        // Rankings (node + score text) must be identical under every
        // policy, on the indexed, exact, and batch paths.
        let ranking = |t: &str| -> Vec<String> {
            t.lines()
                .filter(|l| l.starts_with(|c: char| c.is_ascii_digit()))
                .map(Into::into)
                .collect()
        };
        let mut per_policy = Vec::new();
        for policy in ["auto", "dense", "sparse"] {
            let (code, q) = run_cmd(&format!(
                "query --graph {} --index {} --seed 3 --topk 5 --frontier {policy}",
                graph.display(),
                index.display()
            ));
            assert_eq!(code, 0, "{q}");
            let (code, e) = run_cmd(&format!(
                "exact --graph {} --seed 3 --topk 5 --frontier {policy}",
                graph.display()
            ));
            assert_eq!(code, 0, "{e}");
            let (code, b) = run_cmd(&format!(
                "batch --graph {} --seeds {} --topk 3 --frontier {policy}",
                graph.display(),
                seeds.display()
            ));
            assert_eq!(code, 0, "{b}");
            per_policy.push((ranking(&q), ranking(&e), ranking(&b)));
        }
        assert_eq!(per_policy[0], per_policy[1], "auto vs dense");
        assert_eq!(per_policy[0], per_policy[2], "auto vs sparse");

        let (code, _) =
            run_cmd(&format!("exact --graph {} --seed 3 --frontier frog", graph.display()));
        assert_eq!(code, 1, "bad --frontier must be rejected");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn metrics_out_writes_a_scrapeable_dump() {
        let d = tmpdir("metrics");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let dump = d.join("metrics.prom");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));

        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --metrics-out {}",
            graph.display(),
            index.display(),
            dump.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("metrics written"), "{text}");
        let rendered = std::fs::read_to_string(&dump).unwrap();
        assert!(rendered.contains("tpa_requests_total"), "{rendered}");

        // `stats --metrics` validates the dump and enforces --require.
        let (code, text) = run_cmd(&format!(
            "stats --metrics {} --require tpa_requests_total,tpa_request_latency_seconds",
            dump.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("all required families present"), "{text}");
        let (code, _) =
            run_cmd(&format!("stats --metrics {} --require tpa_no_such_family", dump.display()));
        assert_eq!(code, 1, "a missing required family must fail");

        // A corrupt dump is a parse error, not a silent pass.
        std::fs::write(&dump, "tpa_requests_total{unclosed 1\n").unwrap();
        let (code, _) = run_cmd(&format!("stats --metrics {}", dump.display()));
        assert_eq!(code, 1);

        // JSON dumps keyed by extension.
        let json = d.join("metrics.json");
        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --metrics-out {}",
            graph.display(),
            index.display(),
            json.display()
        ));
        assert_eq!(code, 0, "{text}");
        let rendered = std::fs::read_to_string(&json).unwrap();
        assert!(rendered.trim_start().starts_with('['), "{rendered}");
        assert!(rendered.contains("tpa_requests_total"), "{rendered}");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn metrics_every_chunks_batch_and_update() {
        let d = tmpdir("metrics-every");
        let graph = d.join("g.bin");
        let seeds = d.join("seeds.txt");
        let stream = d.join("stream.txt");
        let dump = d.join("m.prom");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        std::fs::write(&seeds, "0 1 2 3 4\n").unwrap();
        std::fs::write(&stream, "+ 1 5\n? 1\n+ 5 9\n? 5\n").unwrap();

        let (code, text) = run_cmd(&format!(
            "batch --graph {} --seeds {} --topk 2 --metrics-out {} --metrics-every 2",
            graph.display(),
            seeds.display(),
            dump.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("batched 5 seeds"), "{text}");
        assert!(std::fs::read_to_string(&dump).unwrap().contains("tpa_requests_total"));

        let (code, text) = run_cmd(&format!(
            "update --graph {} --stream {} --metrics-out {} --metrics-every 1",
            graph.display(),
            stream.display(),
            dump.display()
        ));
        assert_eq!(code, 0, "{text}");
        let rendered = std::fs::read_to_string(&dump).unwrap();
        assert!(rendered.contains("tpa_epoch_publishes_total"), "{rendered}");

        // --metrics-every without --metrics-out, and on query, are errors.
        let (code, _) = run_cmd(&format!(
            "batch --graph {} --seeds {} --metrics-every 2",
            graph.display(),
            seeds.display()
        ));
        assert_eq!(code, 1);
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index nope.tpa --seed 1 --metrics-out {} --metrics-every 2",
            graph.display(),
            dump.display()
        ));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn seed_out_of_range_rejected() {
        let d = tmpdir("range");
        let graph = d.join("s.bin");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        let (code, _) = run_cmd(&format!("exact --graph {} --seed 999999", graph.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn admission_flags_gate_query_batch_update() {
        let d = tmpdir("admission");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let seeds = d.join("seeds.txt");
        let stream = d.join("stream.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&seeds, "0 3 7\n").unwrap();
        std::fs::write(&stream, "+ 1 5\n? 1\n").unwrap();

        // A generous deadline + a one-wide gate pass on every command.
        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --deadline-ms 60000 --max-inflight 1 \
             --shed-policy degrade",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("rank"), "{text}");
        let (code, text) = run_cmd(&format!(
            "batch --graph {} --seeds {} --topk 2 --deadline-ms 60000 --max-inflight 2 \
             --shed-policy off",
            graph.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        let (code, text) = run_cmd(&format!(
            "update --graph {} --stream {} --deadline-ms 60000 --max-inflight 1 \
             --shed-policy reject",
            graph.display(),
            stream.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("query seed 1"), "{text}");

        // Bad values are rejected with a message, not a panic.
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --deadline-ms 0",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 1, "--deadline-ms 0 must be rejected");
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --max-inflight 0",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 1, "--max-inflight 0 must be rejected");
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --shed-policy degrade",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 1, "--shed-policy without --max-inflight must be rejected");
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --max-inflight 2 --shed-policy sometimes",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 1, "an unknown shed policy must be rejected");
        let _ = std::fs::remove_dir_all(d);
    }
}
