//! Implementations of the `tpa` subcommands, separated from `main` for
//! testability. Every command takes parsed [`Args`] and a writer for
//! output, and returns a process exit code.

use crate::args::Args;
use std::io::Write;
use std::path::Path;
use tpa_core::{exact_rwr, CpiConfig, TpaIndex, TpaParams, Transition};
use tpa_eval::metrics::top_k;
use tpa_graph::{algo, io as gio, CsrGraph};

/// Runs a subcommand; prints results to `out` and errors to stderr.
pub fn run(args: &Args, out: &mut dyn Write) -> i32 {
    let result = match args.command.as_str() {
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        "generate" => cmd_generate(args, out),
        "stats" => cmd_stats(args, out),
        "preprocess" => cmd_preprocess(args, out),
        "query" => cmd_query(args, out),
        "exact" => cmd_exact(args, out),
        "convert" => cmd_convert(args, out),
        other => Err(format!("unknown subcommand {other:?}; try `tpa help`")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            1
        }
    }
}

/// CLI usage text.
pub fn usage() -> &'static str {
    "tpa — Two-Phase Approximation for Random Walk with Restart

USAGE: tpa <command> [flags]

COMMANDS:
  generate   --dataset <key> [--scale N] --out <file>
             write a synthetic Table-II analog graph (binary snapshot)
  convert    --in <edges.txt|snapshot> --out <file> [--format edges|snapshot]
             convert between edge-list and snapshot formats
  stats      --graph <file> [--cc-sample N]
             print node/edge counts, degrees, components, reciprocity
  preprocess --graph <file> --s <S> --t <T> --out <index.tpa>
             run TPA's preprocessing phase and save the index
  query      --graph <file> --index <index.tpa> --seed <node> [--top K]
             approximate RWR scores for a seed (fast online phase)
  exact      --graph <file> --seed <node> [--top K]
             exact RWR via power iteration (ground truth)

Dataset keys: slashdot-s google-s pokec-s livejournal-s wikilink-s
              twitter-s friendster-s"
}

/// Loads a graph from either format (snapshot detected by magic).
fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let p = Path::new(path);
    let head = std::fs::read(p).map_err(|e| format!("{path}: {e}"))?;
    if head.starts_with(b"TPAGRAF1") {
        gio::read_snapshot(std::io::Cursor::new(head)).map_err(|e| format!("{path}: {e}"))
    } else {
        gio::read_edge_list(std::io::Cursor::new(head), None)
            .map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let key = args.required("dataset").map_err(|e| e.to_string())?;
    let scale = args.get_or::<usize>("scale", 1).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let spec = tpa_datasets::spec(key).ok_or_else(|| format!("unknown dataset {key}"))?;
    let spec = if scale > 1 { spec.scaled_down(scale) } else { *spec };
    let d = tpa_datasets::generate(&spec);
    gio::write_snapshot_file(&d.graph, path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {} ({} nodes, {} edges, S={}, T={})",
        path,
        d.graph.n(),
        d.graph.m(),
        spec.s,
        spec.t
    );
    Ok(())
}

fn cmd_convert(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let output = args.required("out").map_err(|e| e.to_string())?;
    let format = args.get("format").unwrap_or("snapshot");
    let g = load_graph(input)?;
    match format {
        "snapshot" => gio::write_snapshot_file(&g, output).map_err(|e| e.to_string())?,
        "edges" => gio::write_edge_list_file(&g, output).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown --format {other}; use edges|snapshot")),
    }
    let _ = writeln!(out, "wrote {output} ({} nodes, {} edges)", g.n(), g.m());
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let cc_sample = args.get_or::<usize>("cc-sample", 500).map_err(|e| e.to_string())?;
    let (_, wcc) = algo::weakly_connected_components(&g);
    let (_, scc) = algo::strongly_connected_components(&g);
    let hist = algo::degree_histogram(&g);
    let max_deg = hist.len().saturating_sub(1);
    let gamma = algo::power_law_exponent(&g, 4);
    let _ = writeln!(out, "nodes                {}", g.n());
    let _ = writeln!(out, "edges                {}", g.m());
    let _ = writeln!(out, "avg out-degree       {:.3}", g.avg_degree());
    let _ = writeln!(out, "max out-degree       {max_deg}");
    let _ = writeln!(out, "dangling nodes       {}", g.dangling_nodes().len());
    let _ = writeln!(out, "weakly connected     {wcc}");
    let _ = writeln!(out, "strongly connected   {scc}");
    let _ = writeln!(out, "reciprocity          {:.4}", algo::reciprocity(&g));
    match gamma {
        Some(v) => {
            let _ = writeln!(out, "power-law exponent   {v:.2} (MLE, d>=4)");
        }
        None => {
            let _ = writeln!(out, "power-law exponent   n/a");
        }
    }
    let _ = writeln!(
        out,
        "clustering coeff     {:.4} (sampled {})",
        algo::clustering_coefficient(&g, cc_sample, 42),
        cc_sample.min(g.n())
    );
    Ok(())
}

fn cmd_preprocess(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let s = args.get_or::<usize>("s", 5).map_err(|e| e.to_string())?;
    let t = args.get_or::<usize>("t", 10).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let params = TpaParams::new(s, t);
    let (index, dt) = tpa_eval::time(|| TpaIndex::preprocess(&g, params));
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    index.save(std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "preprocessed in {} — index {} → {}",
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_bytes(index.index_bytes()),
        path
    );
    Ok(())
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let index_path = args.required("index").map_err(|e| e.to_string())?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = args.get_or::<usize>("top", 10).map_err(|e| e.to_string())?;
    if seed as usize >= g.n() {
        return Err(format!("seed {seed} out of range (n = {})", g.n()));
    }
    let f = std::fs::File::open(index_path).map_err(|e| e.to_string())?;
    let index = TpaIndex::load(std::io::BufReader::new(f)).map_err(|e| e.to_string())?;
    if index.stranger().len() != g.n() {
        return Err(format!(
            "index is for a graph with {} nodes, this graph has {}",
            index.stranger().len(),
            g.n()
        ));
    }
    let transition = Transition::new(&g);
    let (scores, dt) = tpa_eval::time(|| index.query(&transition, seed));
    let _ = writeln!(out, "query took {}", tpa_eval::format_secs(dt.as_secs_f64()));
    print_ranking(out, &scores, top);
    Ok(())
}

fn cmd_exact(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = args.get_or::<usize>("top", 10).map_err(|e| e.to_string())?;
    if seed as usize >= g.n() {
        return Err(format!("seed {seed} out of range (n = {})", g.n()));
    }
    let (scores, dt) = tpa_eval::time(|| exact_rwr(&g, seed, &CpiConfig::default()));
    let _ = writeln!(out, "query took {}", tpa_eval::format_secs(dt.as_secs_f64()));
    print_ranking(out, &scores, top);
    Ok(())
}

fn print_ranking(out: &mut dyn Write, scores: &[f64], top: usize) {
    let _ = writeln!(out, "rank  node        score");
    for (rank, v) in top_k(scores, top).into_iter().enumerate() {
        let _ = writeln!(out, "{:<5} {:<11} {:.8}", rank + 1, v, scores[v as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run_cmd(line: &str) -> (i32, String) {
        let args =
            Args::parse(line.split_whitespace().map(str::to_string)).expect("parse");
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join(format!("tpa-cli-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(text.contains("preprocess"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, _) = run_cmd("frobnicate");
        assert_eq!(code, 1);
    }

    #[test]
    fn full_pipeline_generate_stats_preprocess_query() {
        let d = tmpdir("pipeline");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");

        let (code, text) = run_cmd(&format!(
            "generate --dataset slashdot-s --scale 20 --out {}",
            graph.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("nodes"));

        let (code, text) = run_cmd(&format!("stats --graph {}", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("reciprocity"));
        assert!(text.contains("strongly connected"));

        let (code, text) = run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");

        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --top 5",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("rank"));

        let (code, text) = run_cmd(&format!("exact --graph {} --seed 3", graph.display()));
        assert_eq!(code, 0, "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn convert_roundtrip() {
        let d = tmpdir("convert");
        let snap = d.join("c.bin");
        let edges = d.join("c.txt");
        let (code, _) = run_cmd(&format!(
            "generate --dataset slashdot-s --scale 40 --out {}",
            snap.display()
        ));
        assert_eq!(code, 0);
        let (code, _) = run_cmd(&format!(
            "convert --in {} --out {} --format edges",
            snap.display(),
            edges.display()
        ));
        assert_eq!(code, 0);
        let g1 = load_graph(snap.to_str().unwrap()).unwrap();
        let g2 = load_graph(edges.to_str().unwrap()).unwrap();
        assert_eq!(g1, g2);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn query_rejects_mismatched_index() {
        let d = tmpdir("mismatch");
        let g1 = d.join("a.bin");
        let g2 = d.join("b.bin");
        let idx = d.join("a.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", g1.display()));
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", g2.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            g1.display(),
            idx.display()
        ));
        let (code, _) = run_cmd(&format!(
            "query --graph {} --index {} --seed 0",
            g2.display(),
            idx.display()
        ));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn seed_out_of_range_rejected() {
        let d = tmpdir("range");
        let graph = d.join("s.bin");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        let (code, _) = run_cmd(&format!("exact --graph {} --seed 999999", graph.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }
}
