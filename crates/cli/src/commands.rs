//! Implementations of the `tpa` subcommands, separated from `main` for
//! testability. Every command takes parsed [`Args`] and a writer for
//! output, and returns a process exit code.

use crate::args::Args;
use std::io::Write;
use std::path::Path;
use tpa_core::{QueryEngine, QueryPlan, TpaIndex, TpaParams};
use tpa_graph::{algo, io as gio, CsrGraph, NodeId};

/// Runs a subcommand; prints results to `out` and errors to stderr.
pub fn run(args: &Args, out: &mut dyn Write) -> i32 {
    let result = match args.command.as_str() {
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(())
        }
        "generate" => cmd_generate(args, out),
        "stats" => cmd_stats(args, out),
        "preprocess" => cmd_preprocess(args, out),
        "query" => cmd_query(args, out),
        "batch" => cmd_batch(args, out),
        "exact" => cmd_exact(args, out),
        "convert" => cmd_convert(args, out),
        other => Err(format!("unknown subcommand {other:?}; try `tpa help`")),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            1
        }
    }
}

/// CLI usage text.
pub fn usage() -> &'static str {
    "tpa — Two-Phase Approximation for Random Walk with Restart

USAGE: tpa <command> [flags]

COMMANDS:
  generate   --dataset <key> [--scale N] --out <file>
             write a synthetic Table-II analog graph (binary snapshot)
  convert    --in <edges.txt|snapshot> --out <file> [--format edges|snapshot]
             convert between edge-list and snapshot formats
  stats      --graph <file> [--cc-sample N]
             print node/edge counts, degrees, components, reciprocity
  preprocess --graph <file> --s <S> --t <T> --out <index.tpa>
             run TPA's preprocessing phase and save the index
  query      --graph <file> --index <index.tpa> --seed <node>
             [--topk K] [--threads N]
             approximate RWR scores for a seed (fast online phase)
  batch      --graph <file> --seeds <file> [--index <index.tpa>]
             [--topk K] [--threads N]
             serve every seed in the file in one batched engine pass
             (seeds are whitespace/newline separated; # comments ok);
             without --index the batch is answered exactly
  exact      --graph <file> --seed <node> [--topk K] [--threads N]
             exact RWR via power iteration (ground truth)

--threads 0 uses all available cores; the default (1) is sequential.
--top is accepted as an alias of --topk.

Dataset keys: slashdot-s google-s pokec-s livejournal-s wikilink-s
              twitter-s friendster-s"
}

/// Loads a graph from either format (snapshot detected by magic).
fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let p = Path::new(path);
    let head = std::fs::read(p).map_err(|e| format!("{path}: {e}"))?;
    if head.starts_with(b"TPAGRAF1") {
        gio::read_snapshot(std::io::Cursor::new(head)).map_err(|e| format!("{path}: {e}"))
    } else {
        gio::read_edge_list(std::io::Cursor::new(head), None).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let key = args.required("dataset").map_err(|e| e.to_string())?;
    let scale = args.get_or::<usize>("scale", 1).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let spec = tpa_datasets::spec(key).ok_or_else(|| format!("unknown dataset {key}"))?;
    let spec = if scale > 1 { spec.scaled_down(scale) } else { *spec };
    let d = tpa_datasets::generate(&spec);
    gio::write_snapshot_file(&d.graph, path).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {} ({} nodes, {} edges, S={}, T={})",
        path,
        d.graph.n(),
        d.graph.m(),
        spec.s,
        spec.t
    );
    Ok(())
}

fn cmd_convert(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let input = args.required("in").map_err(|e| e.to_string())?;
    let output = args.required("out").map_err(|e| e.to_string())?;
    let format = args.get("format").unwrap_or("snapshot");
    let g = load_graph(input)?;
    match format {
        "snapshot" => gio::write_snapshot_file(&g, output).map_err(|e| e.to_string())?,
        "edges" => gio::write_edge_list_file(&g, output).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown --format {other}; use edges|snapshot")),
    }
    let _ = writeln!(out, "wrote {output} ({} nodes, {} edges)", g.n(), g.m());
    Ok(())
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let cc_sample = args.get_or::<usize>("cc-sample", 500).map_err(|e| e.to_string())?;
    let (_, wcc) = algo::weakly_connected_components(&g);
    let (_, scc) = algo::strongly_connected_components(&g);
    let hist = algo::degree_histogram(&g);
    let max_deg = hist.len().saturating_sub(1);
    let gamma = algo::power_law_exponent(&g, 4);
    let _ = writeln!(out, "nodes                {}", g.n());
    let _ = writeln!(out, "edges                {}", g.m());
    let _ = writeln!(out, "avg out-degree       {:.3}", g.avg_degree());
    let _ = writeln!(out, "max out-degree       {max_deg}");
    let _ = writeln!(out, "dangling nodes       {}", g.dangling_nodes().len());
    let _ = writeln!(out, "weakly connected     {wcc}");
    let _ = writeln!(out, "strongly connected   {scc}");
    let _ = writeln!(out, "reciprocity          {:.4}", algo::reciprocity(&g));
    match gamma {
        Some(v) => {
            let _ = writeln!(out, "power-law exponent   {v:.2} (MLE, d>=4)");
        }
        None => {
            let _ = writeln!(out, "power-law exponent   n/a");
        }
    }
    let _ = writeln!(
        out,
        "clustering coeff     {:.4} (sampled {})",
        algo::clustering_coefficient(&g, cc_sample, 42),
        cc_sample.min(g.n())
    );
    Ok(())
}

fn cmd_preprocess(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let s = args.get_or::<usize>("s", 5).map_err(|e| e.to_string())?;
    let t = args.get_or::<usize>("t", 10).map_err(|e| e.to_string())?;
    let path = args.required("out").map_err(|e| e.to_string())?;
    let params = TpaParams::new(s, t);
    let (index, dt) = tpa_eval::time(|| TpaIndex::preprocess(&g, params));
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    index.save(std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "preprocessed in {} — index {} → {}",
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_bytes(index.index_bytes()),
        path
    );
    Ok(())
}

/// `--topk` with `--top` accepted as a legacy alias.
fn topk_flag(args: &Args) -> Result<usize, String> {
    match args.get("topk") {
        Some(_) => args.get_or::<usize>("topk", 10).map_err(|e| e.to_string()),
        None => args.get_or::<usize>("top", 10).map_err(|e| e.to_string()),
    }
}

/// Builds the engine for the `--threads` flag: 1 (default) is the
/// sequential backend, 0 all cores, N>1 that many workers.
fn build_engine<'g>(g: &'g CsrGraph, args: &Args) -> Result<QueryEngine<'g>, String> {
    let threads = args.get_or::<usize>("threads", 1).map_err(|e| e.to_string())?;
    Ok(if threads == 1 { QueryEngine::sequential(g) } else { QueryEngine::parallel(g, threads) })
}

fn load_index(path: &str, g: &CsrGraph) -> Result<TpaIndex, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let index = TpaIndex::load(std::io::BufReader::new(f)).map_err(|e| e.to_string())?;
    if index.stranger().len() != g.n() {
        return Err(format!(
            "index is for a graph with {} nodes, this graph has {}",
            index.stranger().len(),
            g.n()
        ));
    }
    Ok(index)
}

fn check_seed(seed: NodeId, g: &CsrGraph) -> Result<(), String> {
    if seed as usize >= g.n() {
        return Err(format!("seed {seed} out of range (n = {})", g.n()));
    }
    Ok(())
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let index_path = args.required("index").map_err(|e| e.to_string())?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = topk_flag(args)?;
    check_seed(seed, &g)?;
    let index = load_index(index_path, &g)?;
    let engine = build_engine(&g, args)?.with_index(index);
    let (ranked, dt) = tpa_eval::time(|| engine.top_k(seed, top));
    let _ = writeln!(out, "query took {}", tpa_eval::format_secs(dt.as_secs_f64()));
    print_ranking(out, &ranked);
    Ok(())
}

fn cmd_exact(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let seed = args.get_or::<u32>("seed", 0).map_err(|e| e.to_string())?;
    let top = topk_flag(args)?;
    check_seed(seed, &g)?;
    let engine = build_engine(&g, args)?;
    let (result, dt) =
        tpa_eval::time(|| engine.execute(&QueryPlan::single(seed).top_k(top).exact()));
    let _ = writeln!(out, "query took {}", tpa_eval::format_secs(dt.as_secs_f64()));
    print_ranking(out, &result.into_ranked().pop().unwrap());
    Ok(())
}

/// Parses a seed file: whitespace/newline-separated node ids; `#` starts
/// a comment running to end of line.
fn parse_seed_file(path: &str) -> Result<Vec<NodeId>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("");
        for tok in line.split_whitespace() {
            let seed: NodeId =
                tok.parse().map_err(|_| format!("{path}:{}: bad seed {tok:?}", lineno + 1))?;
            seeds.push(seed);
        }
    }
    if seeds.is_empty() {
        return Err(format!("{path}: no seeds found"));
    }
    Ok(seeds)
}

fn cmd_batch(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let g = load_graph(args.required("graph").map_err(|e| e.to_string())?)?;
    let seeds = parse_seed_file(args.required("seeds").map_err(|e| e.to_string())?)?;
    let top = topk_flag(args)?;
    for &s in &seeds {
        check_seed(s, &g)?;
    }
    let mut engine = build_engine(&g, args)?;
    let mut plan = QueryPlan::batch(seeds.clone()).top_k(top);
    match args.get("index") {
        Some(path) => engine = engine.with_index(load_index(path, &g)?),
        None => plan = plan.exact(),
    }
    let (result, dt) = tpa_eval::time(|| engine.execute(&plan));
    let rankings = result.into_ranked();
    let _ = writeln!(
        out,
        "batched {} seeds in {} ({} per seed, backend {})",
        seeds.len(),
        tpa_eval::format_secs(dt.as_secs_f64()),
        tpa_eval::format_secs(dt.as_secs_f64() / seeds.len() as f64),
        engine.backend().name(),
    );
    for (seed, ranked) in seeds.iter().zip(rankings) {
        let _ = writeln!(out, "\nseed {seed}:");
        print_ranking(out, &ranked);
    }
    Ok(())
}

fn print_ranking(out: &mut dyn Write, ranked: &[(NodeId, f64)]) {
    let _ = writeln!(out, "rank  node        score");
    for (rank, &(v, score)) in ranked.iter().enumerate() {
        let _ = writeln!(out, "{:<5} {:<11} {:.8}", rank + 1, v, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn run_cmd(line: &str) -> (i32, String) {
        let args = Args::parse(line.split_whitespace().map(str::to_string)).expect("parse");
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tpa-cli-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_cmd("help");
        assert_eq!(code, 0);
        assert!(text.contains("preprocess"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, _) = run_cmd("frobnicate");
        assert_eq!(code, 1);
    }

    #[test]
    fn full_pipeline_generate_stats_preprocess_query() {
        let d = tmpdir("pipeline");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");

        let (code, text) =
            run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("nodes"));

        let (code, text) = run_cmd(&format!("stats --graph {}", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("reciprocity"));
        assert!(text.contains("strongly connected"));

        let (code, text) = run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");

        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --top 5",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("rank"));

        let (code, text) = run_cmd(&format!("exact --graph {} --seed 3", graph.display()));
        assert_eq!(code, 0, "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn convert_roundtrip() {
        let d = tmpdir("convert");
        let snap = d.join("c.bin");
        let edges = d.join("c.txt");
        let (code, _) =
            run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", snap.display()));
        assert_eq!(code, 0);
        let (code, _) = run_cmd(&format!(
            "convert --in {} --out {} --format edges",
            snap.display(),
            edges.display()
        ));
        assert_eq!(code, 0);
        let g1 = load_graph(snap.to_str().unwrap()).unwrap();
        let g2 = load_graph(edges.to_str().unwrap()).unwrap();
        assert_eq!(g1, g2);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn query_rejects_mismatched_index() {
        let d = tmpdir("mismatch");
        let g1 = d.join("a.bin");
        let g2 = d.join("b.bin");
        let idx = d.join("a.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", g1.display()));
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", g2.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            g1.display(),
            idx.display()
        ));
        let (code, _) =
            run_cmd(&format!("query --graph {} --index {} --seed 0", g2.display(), idx.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn batch_serves_seed_file_through_engine() {
        let d = tmpdir("batch");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        std::fs::write(&seeds, "0 3\n7 # trailing comment\n# full comment line\n9\n").unwrap();

        let (code, text) = run_cmd(&format!(
            "batch --graph {} --index {} --seeds {} --topk 3 --threads 2",
            graph.display(),
            index.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("batched 4 seeds"), "{text}");
        assert!(text.contains("backend parallel"), "{text}");
        assert!(text.contains("seed 7:"), "{text}");

        // Without an index the batch falls back to exact execution.
        let (code, text) = run_cmd(&format!(
            "batch --graph {} --seeds {} --topk 2",
            graph.display(),
            seeds.display()
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("backend sequential"), "{text}");

        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn batch_rejects_bad_seed_file() {
        let d = tmpdir("badseeds");
        let graph = d.join("g.bin");
        let seeds = d.join("seeds.txt");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        std::fs::write(&seeds, "1 frog 2\n").unwrap();
        let (code, _) =
            run_cmd(&format!("batch --graph {} --seeds {}", graph.display(), seeds.display()));
        assert_eq!(code, 1);
        std::fs::write(&seeds, "# only comments\n").unwrap();
        let (code, _) =
            run_cmd(&format!("batch --graph {} --seeds {}", graph.display(), seeds.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn query_accepts_topk_and_threads_flags() {
        let d = tmpdir("flags");
        let graph = d.join("g.bin");
        let index = d.join("g.tpa");
        run_cmd(&format!("generate --dataset slashdot-s --scale 20 --out {}", graph.display()));
        run_cmd(&format!(
            "preprocess --graph {} --s 5 --t 10 --out {}",
            graph.display(),
            index.display()
        ));
        let (code, text) = run_cmd(&format!(
            "query --graph {} --index {} --seed 3 --topk 4 --threads 0",
            graph.display(),
            index.display()
        ));
        assert_eq!(code, 0, "{text}");
        // Header + 4 ranked rows after the timing line.
        assert_eq!(text.lines().count(), 6, "{text}");
        let (code, text) =
            run_cmd(&format!("exact --graph {} --seed 3 --topk 4 --threads 2", graph.display()));
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.lines().count(), 6, "{text}");
        let _ = std::fs::remove_dir_all(d);
    }

    #[test]
    fn seed_out_of_range_rejected() {
        let d = tmpdir("range");
        let graph = d.join("s.bin");
        run_cmd(&format!("generate --dataset slashdot-s --scale 40 --out {}", graph.display()));
        let (code, _) = run_cmd(&format!("exact --graph {} --seed 999999", graph.display()));
        assert_eq!(code, 1);
        let _ = std::fs::remove_dir_all(d);
    }
}
