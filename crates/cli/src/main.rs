//! `tpa` — command-line interface for the TPA reproduction.
//!
//! ```text
//! tpa generate --dataset slashdot-s --out g.bin
//! tpa stats --graph g.bin
//! tpa preprocess --graph g.bin --s 5 --t 15 --out g.tpa
//! tpa query --graph g.bin --index g.tpa --seed 42 --top 10
//! ```

mod args;
mod commands;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    std::process::exit(commands::run(&parsed, &mut stdout));
}
